#include "nn/infer/forward.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/backend.h"
#include "nn/kernels.h"

// Runtime ISA dispatch for the GEMV kernel: the 8-lane double loop is plain
// IEEE arithmetic with a source-fixed accumulation order, so every clone
// computes bitwise-identical results and the dispatch only affects speed.
// Disabled under sanitizers (ifunc resolvers run before their runtimes
// initialize) and off x86-64 ELF targets.
#if defined(__GNUC__) && defined(__x86_64__) && defined(__ELF__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define DEEPST_INFER_CLONES \
  __attribute__((target_clones("avx512f", "avx2,fma", "default")))
#else
#define DEEPST_INFER_CLONES
#endif

namespace deepst {
namespace nn {
namespace infer {
namespace {

// Per-element helpers below MUST be inlined into each target_clones clone:
// an out-of-line copy would be compiled for the default ISA (and with its
// own FP-contraction choices), so two call sites of the same helper could
// produce results differing in the last bit. Forcing the inline keeps every
// clone's arithmetic self-contained and bitwise reproducible.
#define DEEPST_FORCE_INLINE inline __attribute__((always_inline))

typedef double Vec8 __attribute__((vector_size(64)));
typedef float VecF8x32 __attribute__((vector_size(32)));
// 16-lane float types for the reduced-precision kernels: same 64-byte
// register budget as Vec8, twice the elements per op.
typedef float VecF16 __attribute__((vector_size(64)));
typedef uint16_t VecH16 __attribute__((vector_size(32)));
typedef uint32_t VecU16 __attribute__((vector_size(64)));
typedef int8_t VecQ16 __attribute__((vector_size(16)));
typedef int16_t VecW16 __attribute__((vector_size(32)));
typedef int32_t VecI16 __attribute__((vector_size(64)));

// bfloat16 <-> float: the top 16 bits of the float pattern, packed with
// round-to-nearest-even and decoded by a plain 16-bit shift (exact).
DEEPST_FORCE_INLINE uint16_t PackBf16(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  u += 0x7fffu + ((u >> 16) & 1u);
  return static_cast<uint16_t>(u >> 16);
}

DEEPST_FORCE_INLINE float UnpackBf16(uint16_t h) {
  const uint32_t u = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// One output element: an 8-lane double dot over k, lanes combined pairwise
// in a fixed order, plus the optional biases. Inlined into each ISA clone
// of LinearChunk so the lane arithmetic picks up the clone's vector width.
DEEPST_FORCE_INLINE float DotBias(const double* xrow, const double* wrow, int64_t k,
                     const float* bias, const float* bias2, int64_t j) {
  Vec8 acc = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    Vec8 xv, wv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&wv, wrow + kk, sizeof(wv));
    acc += xv * wv;
  }
  double tail = 0.0;
  for (; kk < k; ++kk) tail += xrow[kk] * wrow[kk];
  const double sum = (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                      ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
                     tail;
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// One contiguous run [begin, end) of the flat row-major output; (i, j) are
// tracked incrementally to keep integer divisions out of the loop.
DEEPST_INFER_CLONES
void LinearChunk(const double* x, int64_t ldx, const double* w, int64_t ldw,
                 const float* bias, const float* bias2, float* out, int64_t k,
                 int64_t n, int64_t begin, int64_t end) {
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    out[e] = DotBias(x + i * ldx, w + j * ldw, k, bias, bias2, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

// Row-mapped bias counterpart of LinearChunk: the bias rows live in a
// [num_queries, n] block and `bias_row[i]` picks the row for output row i.
// Reuses DotBias with per-row-offset pointers, so each element's arithmetic
// is exactly LinearChunk's.
DEEPST_INFER_CLONES
void LinearChunkRowBias(const double* x, int64_t ldx, const double* w,
                        int64_t ldw, const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t k, int64_t n,
                        int64_t begin, int64_t end) {
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    out[e] = DotBias(x + i * ldx, w + j * ldw, k,
                     bias != nullptr ? bias + off : nullptr,
                     bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

// The reduced-precision kernels accumulate in float, not double: the
// operands carry at most bf16 (8-bit mantissa) or int8 information, so a
// 24-bit float accumulator over a source-fixed 16-lane order keeps the
// rounding noise orders of magnitude below the quantization error itself
// (the accuracy-parity gate in tools/check_perf.sh bounds the end-to-end
// effect). 16 float lanes fill the same 64-byte registers as the double
// kernel's 8 double lanes with twice the elements per op, which is what
// pays for the weight decode and lets the packed kernels keep up with (or
// beat) the double kernel while touching 4-8x less weight memory.
//
// Each chunk converts the activation row double -> float once (exact
// rounding) into a stack buffer and reuses it across that row's outputs.
// Rows are capped at kMaxFloatK columns (checked; every model here is far
// under). Both passes are row-local with a source-fixed order, so batch
// composition and chunk boundaries stay invisible.
inline constexpr int64_t kMaxFloatK = 1024;

DEEPST_FORCE_INLINE float LaneSumF(const VecF8x32& acc) {
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

DEEPST_FORCE_INLINE float LaneSumF16(const VecF16& a) {
  return (((a[0] + a[1]) + (a[2] + a[3])) +
          ((a[4] + a[5]) + (a[6] + a[7]))) +
         (((a[8] + a[9]) + (a[10] + a[11])) +
          ((a[12] + a[13]) + (a[14] + a[15])));
}

// dst[i] = float(src[i]); returns the fixed 8-lane float sum of dst (the
// int8 kernel's zero-point term, free in the conversion pass).
DEEPST_FORCE_INLINE float ToFloatRowSum(const double* src, float* dst, int64_t k) {
  VecF8x32 xs = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    Vec8 xv;
    std::memcpy(&xv, src + kk, sizeof(xv));
    const VecF8x32 fv = __builtin_convertvector(xv, VecF8x32);
    std::memcpy(dst + kk, &fv, sizeof(fv));
    xs += fv;
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) {
    dst[kk] = static_cast<float>(src[kk]);
    tail += dst[kk];
  }
  return LaneSumF(xs) + tail;
}

// bf16 dot: weights widen to float lanes in-register (u16 -> u32<<16,
// bit-cast); fixed 16-lane float accumulation.
DEEPST_FORCE_INLINE float DotBiasBf16(const float* xrow, const uint16_t* wrow, int64_t k,
                         const float* bias, const float* bias2, int64_t j) {
  VecF16 acc = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    VecF16 xv;
    VecH16 hv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&hv, wrow + kk, sizeof(hv));
    const VecU16 bits = __builtin_convertvector(hv, VecU16) << 16;
    VecF16 fv;
    std::memcpy(&fv, &bits, sizeof(fv));
    acc += xv * fv;
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) tail += xrow[kk] * UnpackBf16(wrow[kk]);
  float v = LaneSumF16(acc) + tail;
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// int8 dot: the affine dequant s*(q - z) factors out of the accumulation,
//   dot = s * (sum_k x_k q_k  -  z * sum_k x_k),
// so the inner loop runs on raw int8 lanes (widened to float) with no
// per-tap dequant; `xsum` (the activation sum, independent of the output
// row) is computed once per activation row by the caller. The combine runs
// in double because z*xsum can be ~2^7 times the dot itself.
DEEPST_FORCE_INLINE float DotBiasI8(const float* xrow, float xsum, const int8_t* qrow,
                       int64_t k, float scale, int32_t zero, const float* bias,
                       const float* bias2, int64_t j) {
  VecF16 acc = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    VecF16 xv;
    VecQ16 qv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&qv, qrow + kk, sizeof(qv));
    // Stepwise widen (i8 -> i16 -> i32 -> f32): each hop maps to one
    // sign-extend / convert instruction; a direct i8 -> i32 conversion
    // gets scalarized byte-by-byte by GCC.
    const VecW16 wv = __builtin_convertvector(qv, VecW16);
    acc += xv * __builtin_convertvector(__builtin_convertvector(wv, VecI16),
                                        VecF16);
  }
  float tacc = 0.0f;
  for (; kk < k; ++kk) tacc += xrow[kk] * static_cast<float>(qrow[kk]);
  const double qsum = static_cast<double>(LaneSumF16(acc) + tacc);
  const double sum = static_cast<double>(scale) *
                     (qsum - static_cast<double>(zero) *
                                 static_cast<double>(xsum));
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// Per-chunk activation-row staging for the float kernels: re-converts only
// when the output row index advances (outputs are row-major, so each row
// converts once per chunk).
struct FloatRow {
  float xf[kMaxFloatK];
  float xsum = 0.0f;
  int64_t row = -1;

  DEEPST_FORCE_INLINE const float* Refresh(const double* x, int64_t ldx, int64_t k,
                              int64_t i) {
    if (i != row) {
      xsum = ToFloatRowSum(x + i * ldx, xf, k);
      row = i;
    }
    return xf;
  }
};

// Packed-precision counterparts of LinearChunk / LinearChunkRowBias: same
// flat [begin, end) partition and incremental (i, j) bookkeeping, different
// weight decode. Cloned per ISA like the double kernels.
DEEPST_INFER_CLONES
void GemvChunkBf16(const double* x, int64_t ldx, const uint16_t* w,
                   const float* bias, const float* bias2, float* out,
                   int64_t k, int64_t n, int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    out[e] = DotBiasBf16(fr.Refresh(x, ldx, k, i), w + j * k, k, bias, bias2,
                         j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

DEEPST_INFER_CLONES
void GemvChunkBf16RowBias(const double* x, int64_t ldx, const uint16_t* w,
                          const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t k,
                          int64_t n, int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    out[e] = DotBiasBf16(fr.Refresh(x, ldx, k, i), w + j * k, k,
                         bias != nullptr ? bias + off : nullptr,
                         bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

DEEPST_INFER_CLONES
void GemvChunkI8(const double* x, int64_t ldx, const int8_t* w,
                 const float* scale, const int32_t* zero, const float* bias,
                 const float* bias2, float* out, int64_t k, int64_t n,
                 int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const float* xf = fr.Refresh(x, ldx, k, i);
    out[e] = DotBiasI8(xf, fr.xsum, w + j * k, k, scale[j], zero[j], bias,
                       bias2, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

DEEPST_INFER_CLONES
void GemvChunkI8RowBias(const double* x, int64_t ldx, const int8_t* w,
                        const float* scale, const int32_t* zero,
                        const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t k, int64_t n,
                        int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    const float* xf = fr.Refresh(x, ldx, k, i);
    out[e] = DotBiasI8(xf, fr.xsum, w + j * k, k, scale[j], zero[j],
                       bias != nullptr ? bias + off : nullptr,
                       bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// Register-blocked GEMM micro-kernels (the batched fast path).
//
// The chunk kernels above compute one output element per DotBias* call, so a
// weight row is re-streamed from memory once per activation row — at serve
// batches of 16-64 beam lanes the step is bandwidth-bound. The kernels below
// tile the output into kGemmMr x kGemmNr micro-tiles: each K-panel of
// kGemmNr weight rows is streamed once and multiplied against kGemmMr
// activation rows held in registers, cutting weight traffic by kGemmMr x.
//
// Bitwise contract: blocking reorders work only ACROSS output elements,
// never within one. Each of the MR*NR accumulators executes exactly the
// chunk kernel's per-element sequence — the same ascending vector blocks,
// the same `acc += xv * wv` expression (so FP contraction fuses
// identically), the same pairwise lane reduction, the same scalar K tail
// from the row-major arrays, the same cast and bias adds — so the blocked
// path is bitwise identical to the chunk path for all three precisions.
// Partial bands (m % kGemmMr), row tails (n % kGemmNr) and K tails run
// through the retained per-element helpers.

constexpr Vec8 kZero8 = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
constexpr VecF16 kZeroF16 = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};

// Per-activation-row bias base: the row-mapped variant offsets bias/bias2 by
// bias_row[i] * n, the shared variant uses one base for every row. Folding
// the offset into a per-row pointer lets one band kernel serve both call
// forms; per element the arithmetic (v += bias[j]) is unchanged.
DEEPST_FORCE_INLINE const float* BiasBase(const float* base, const int* bias_row, int64_t i,
                             int64_t n) {
  if (base == nullptr || bias_row == nullptr) return base;
  return base + static_cast<int64_t>(bias_row[i]) * n;
}

// Finish one double accumulator: scalar K tail from the row-major weight
// row, then exactly DotBias's pairwise reduction, cast and bias adds.
DEEPST_FORCE_INLINE float FinishD(const Vec8& acc, const double* xrow, const double* wrow,
                     int64_t k, int64_t k0, const float* bias,
                     const float* bias2, int64_t j) {
  double tail = 0.0;
  for (int64_t kk = k0; kk < k; ++kk) tail += xrow[kk] * wrow[kk];
  const double sum = (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                      ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
                     tail;
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// DotBiasBf16's epilogue for one accumulator.
DEEPST_FORCE_INLINE float FinishBf16(const VecF16& acc, const float* xrow,
                        const uint16_t* wrow, int64_t k, int64_t k0,
                        const float* bias, const float* bias2, int64_t j) {
  float tail = 0.0f;
  for (int64_t kk = k0; kk < k; ++kk) tail += xrow[kk] * UnpackBf16(wrow[kk]);
  float v = LaneSumF16(acc) + tail;
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// DotBiasI8's epilogue for one accumulator (double combine, see DotBiasI8).
DEEPST_FORCE_INLINE float FinishI8(const VecF16& acc, const float* xrow, float xsum,
                      const int8_t* qrow, int64_t k, int64_t k0, float scale,
                      int32_t zero, const float* bias, const float* bias2,
                      int64_t j) {
  float tacc = 0.0f;
  for (int64_t kk = k0; kk < k; ++kk) {
    tacc += xrow[kk] * static_cast<float>(qrow[kk]);
  }
  const double qsum = static_cast<double>(LaneSumF16(acc) + tacc);
  const double sum = static_cast<double>(scale) *
                     (qsum - static_cast<double>(zero) *
                                 static_cast<double>(xsum));
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// Blocked double GEMM over bands [band_begin, band_end); a band is kGemmMr
// consecutive activation rows across all n outputs, so chunk boundaries can
// never split a micro-tile. `panels` is the K-major sidecar of
// PackedMatrix::BuildPanels, `w` the retained row-major matrix for tails.
DEEPST_INFER_CLONES
void GemmBandsD(const double* x, int64_t ldx, const double* w,
                const double* panels, const float* bias, const float* bias2,
                const int* bias_row, float* out, int64_t m, int64_t k,
                int64_t n, int64_t band_begin, int64_t band_end) {
  const int64_t kb = k / 8;
  const int64_t np = n / kGemmNr;
  const int64_t pstride = kb * kGemmNr * 8;
  for (int64_t band = band_begin; band < band_end; ++band) {
    const int64_t i0 = band * kGemmMr;
    const int64_t mr = std::min<int64_t>(kGemmMr, m - i0);
    const double* xr[kGemmMr] = {};
    const float* b0[kGemmMr] = {};
    const float* b1[kGemmMr] = {};
    for (int64_t r = 0; r < mr; ++r) {
      xr[r] = x + (i0 + r) * ldx;
      b0[r] = BiasBase(bias, bias_row, i0 + r, n);
      b1[r] = BiasBase(bias2, bias_row, i0 + r, n);
    }
    if (mr == kGemmMr) {
      for (int64_t p = 0; p < np; ++p) {
        const int64_t j0 = p * kGemmNr;
        const double* pp = panels + p * pstride;
        Vec8 a00 = kZero8, a01 = kZero8, a10 = kZero8, a11 = kZero8;
        Vec8 a20 = kZero8, a21 = kZero8, a30 = kZero8, a31 = kZero8;
        int64_t kk = 0;
        for (; kk + 8 <= k; kk += 8, pp += 16) {
          Vec8 w0, w1, xv;
          std::memcpy(&w0, pp, sizeof(w0));
          std::memcpy(&w1, pp + 8, sizeof(w1));
          std::memcpy(&xv, xr[0] + kk, sizeof(xv));
          a00 += xv * w0;
          a01 += xv * w1;
          std::memcpy(&xv, xr[1] + kk, sizeof(xv));
          a10 += xv * w0;
          a11 += xv * w1;
          std::memcpy(&xv, xr[2] + kk, sizeof(xv));
          a20 += xv * w0;
          a21 += xv * w1;
          std::memcpy(&xv, xr[3] + kk, sizeof(xv));
          a30 += xv * w0;
          a31 += xv * w1;
        }
        const double* w0r = w + j0 * k;
        const double* w1r = w0r + k;
        float* o0 = out + (i0 + 0) * n + j0;
        float* o1 = out + (i0 + 1) * n + j0;
        float* o2 = out + (i0 + 2) * n + j0;
        float* o3 = out + (i0 + 3) * n + j0;
        o0[0] = FinishD(a00, xr[0], w0r, k, kk, b0[0], b1[0], j0);
        o0[1] = FinishD(a01, xr[0], w1r, k, kk, b0[0], b1[0], j0 + 1);
        o1[0] = FinishD(a10, xr[1], w0r, k, kk, b0[1], b1[1], j0);
        o1[1] = FinishD(a11, xr[1], w1r, k, kk, b0[1], b1[1], j0 + 1);
        o2[0] = FinishD(a20, xr[2], w0r, k, kk, b0[2], b1[2], j0);
        o2[1] = FinishD(a21, xr[2], w1r, k, kk, b0[2], b1[2], j0 + 1);
        o3[0] = FinishD(a30, xr[3], w0r, k, kk, b0[3], b1[3], j0);
        o3[1] = FinishD(a31, xr[3], w1r, k, kk, b0[3], b1[3], j0 + 1);
      }
      for (int64_t j = np * kGemmNr; j < n; ++j) {
        for (int64_t r = 0; r < kGemmMr; ++r) {
          out[(i0 + r) * n + j] = DotBias(xr[r], w + j * k, k, b0[r], b1[r],
                                          j);
        }
      }
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        for (int64_t j = 0; j < n; ++j) {
          out[(i0 + r) * n + j] = DotBias(xr[r], w + j * k, k, b0[r], b1[r],
                                          j);
        }
      }
    }
  }
}

// Blocked bf16 GEMM: the band's activation rows convert double -> float
// once (same exact conversion the chunk path does per chunk), then each
// K-panel decodes to float lanes once for kGemmMr activation rows.
DEEPST_INFER_CLONES
void GemmBandsBf16(const double* x, int64_t ldx, const uint16_t* w,
                   const uint16_t* panels, const float* bias,
                   const float* bias2, const int* bias_row, float* out,
                   int64_t m, int64_t k, int64_t n, int64_t band_begin,
                   int64_t band_end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  const int64_t kb = k / 16;
  const int64_t np = n / kGemmNr;
  const int64_t pstride = kb * kGemmNr * 16;
  float xf[kGemmMr][kMaxFloatK];
  for (int64_t band = band_begin; band < band_end; ++band) {
    const int64_t i0 = band * kGemmMr;
    const int64_t mr = std::min<int64_t>(kGemmMr, m - i0);
    const float* b0[kGemmMr] = {};
    const float* b1[kGemmMr] = {};
    for (int64_t r = 0; r < mr; ++r) {
      ToFloatRowSum(x + (i0 + r) * ldx, xf[r], k);
      b0[r] = BiasBase(bias, bias_row, i0 + r, n);
      b1[r] = BiasBase(bias2, bias_row, i0 + r, n);
    }
    if (mr == kGemmMr) {
      for (int64_t p = 0; p < np; ++p) {
        const int64_t j0 = p * kGemmNr;
        const uint16_t* pp = panels + p * pstride;
        VecF16 a00 = kZeroF16, a01 = kZeroF16, a10 = kZeroF16,
               a11 = kZeroF16;
        VecF16 a20 = kZeroF16, a21 = kZeroF16, a30 = kZeroF16,
               a31 = kZeroF16;
        int64_t kk = 0;
        for (; kk + 16 <= k; kk += 16, pp += 32) {
          VecH16 hv;
          VecF16 fv0, fv1, xv;
          std::memcpy(&hv, pp, sizeof(hv));
          const VecU16 bits0 = __builtin_convertvector(hv, VecU16) << 16;
          std::memcpy(&fv0, &bits0, sizeof(fv0));
          std::memcpy(&hv, pp + 16, sizeof(hv));
          const VecU16 bits1 = __builtin_convertvector(hv, VecU16) << 16;
          std::memcpy(&fv1, &bits1, sizeof(fv1));
          std::memcpy(&xv, xf[0] + kk, sizeof(xv));
          a00 += xv * fv0;
          a01 += xv * fv1;
          std::memcpy(&xv, xf[1] + kk, sizeof(xv));
          a10 += xv * fv0;
          a11 += xv * fv1;
          std::memcpy(&xv, xf[2] + kk, sizeof(xv));
          a20 += xv * fv0;
          a21 += xv * fv1;
          std::memcpy(&xv, xf[3] + kk, sizeof(xv));
          a30 += xv * fv0;
          a31 += xv * fv1;
        }
        const uint16_t* w0r = w + j0 * k;
        const uint16_t* w1r = w0r + k;
        float* o0 = out + (i0 + 0) * n + j0;
        float* o1 = out + (i0 + 1) * n + j0;
        float* o2 = out + (i0 + 2) * n + j0;
        float* o3 = out + (i0 + 3) * n + j0;
        o0[0] = FinishBf16(a00, xf[0], w0r, k, kk, b0[0], b1[0], j0);
        o0[1] = FinishBf16(a01, xf[0], w1r, k, kk, b0[0], b1[0], j0 + 1);
        o1[0] = FinishBf16(a10, xf[1], w0r, k, kk, b0[1], b1[1], j0);
        o1[1] = FinishBf16(a11, xf[1], w1r, k, kk, b0[1], b1[1], j0 + 1);
        o2[0] = FinishBf16(a20, xf[2], w0r, k, kk, b0[2], b1[2], j0);
        o2[1] = FinishBf16(a21, xf[2], w1r, k, kk, b0[2], b1[2], j0 + 1);
        o3[0] = FinishBf16(a30, xf[3], w0r, k, kk, b0[3], b1[3], j0);
        o3[1] = FinishBf16(a31, xf[3], w1r, k, kk, b0[3], b1[3], j0 + 1);
      }
      for (int64_t j = np * kGemmNr; j < n; ++j) {
        for (int64_t r = 0; r < kGemmMr; ++r) {
          out[(i0 + r) * n + j] =
              DotBiasBf16(xf[r], w + j * k, k, b0[r], b1[r], j);
        }
      }
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        for (int64_t j = 0; j < n; ++j) {
          out[(i0 + r) * n + j] =
              DotBiasBf16(xf[r], w + j * k, k, b0[r], b1[r], j);
        }
      }
    }
  }
}

// Blocked int8 GEMM: per-band double -> float conversion also yields each
// activation row's sum (the zero-point term), shared by every output row.
DEEPST_INFER_CLONES
void GemmBandsI8(const double* x, int64_t ldx, const int8_t* w,
                 const int8_t* panels, const float* scale,
                 const int32_t* zero, const float* bias, const float* bias2,
                 const int* bias_row, float* out, int64_t m, int64_t k,
                 int64_t n, int64_t band_begin, int64_t band_end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  const int64_t kb = k / 16;
  const int64_t np = n / kGemmNr;
  const int64_t pstride = kb * kGemmNr * 16;
  float xf[kGemmMr][kMaxFloatK];
  float xsum[kGemmMr] = {};
  for (int64_t band = band_begin; band < band_end; ++band) {
    const int64_t i0 = band * kGemmMr;
    const int64_t mr = std::min<int64_t>(kGemmMr, m - i0);
    const float* b0[kGemmMr] = {};
    const float* b1[kGemmMr] = {};
    for (int64_t r = 0; r < mr; ++r) {
      xsum[r] = ToFloatRowSum(x + (i0 + r) * ldx, xf[r], k);
      b0[r] = BiasBase(bias, bias_row, i0 + r, n);
      b1[r] = BiasBase(bias2, bias_row, i0 + r, n);
    }
    if (mr == kGemmMr) {
      for (int64_t p = 0; p < np; ++p) {
        const int64_t j0 = p * kGemmNr;
        const int8_t* pp = panels + p * pstride;
        VecF16 a00 = kZeroF16, a01 = kZeroF16, a10 = kZeroF16,
               a11 = kZeroF16;
        VecF16 a20 = kZeroF16, a21 = kZeroF16, a30 = kZeroF16,
               a31 = kZeroF16;
        int64_t kk = 0;
        for (; kk + 16 <= k; kk += 16, pp += 32) {
          VecQ16 qv;
          VecF16 xv;
          std::memcpy(&qv, pp, sizeof(qv));
          const VecF16 fv0 = __builtin_convertvector(
              __builtin_convertvector(__builtin_convertvector(qv, VecW16),
                                      VecI16),
              VecF16);
          std::memcpy(&qv, pp + 16, sizeof(qv));
          const VecF16 fv1 = __builtin_convertvector(
              __builtin_convertvector(__builtin_convertvector(qv, VecW16),
                                      VecI16),
              VecF16);
          std::memcpy(&xv, xf[0] + kk, sizeof(xv));
          a00 += xv * fv0;
          a01 += xv * fv1;
          std::memcpy(&xv, xf[1] + kk, sizeof(xv));
          a10 += xv * fv0;
          a11 += xv * fv1;
          std::memcpy(&xv, xf[2] + kk, sizeof(xv));
          a20 += xv * fv0;
          a21 += xv * fv1;
          std::memcpy(&xv, xf[3] + kk, sizeof(xv));
          a30 += xv * fv0;
          a31 += xv * fv1;
        }
        const int8_t* w0r = w + j0 * k;
        const int8_t* w1r = w0r + k;
        float* o0 = out + (i0 + 0) * n + j0;
        float* o1 = out + (i0 + 1) * n + j0;
        float* o2 = out + (i0 + 2) * n + j0;
        float* o3 = out + (i0 + 3) * n + j0;
        o0[0] = FinishI8(a00, xf[0], xsum[0], w0r, k, kk, scale[j0],
                         zero[j0], b0[0], b1[0], j0);
        o0[1] = FinishI8(a01, xf[0], xsum[0], w1r, k, kk, scale[j0 + 1],
                         zero[j0 + 1], b0[0], b1[0], j0 + 1);
        o1[0] = FinishI8(a10, xf[1], xsum[1], w0r, k, kk, scale[j0],
                         zero[j0], b0[1], b1[1], j0);
        o1[1] = FinishI8(a11, xf[1], xsum[1], w1r, k, kk, scale[j0 + 1],
                         zero[j0 + 1], b0[1], b1[1], j0 + 1);
        o2[0] = FinishI8(a20, xf[2], xsum[2], w0r, k, kk, scale[j0],
                         zero[j0], b0[2], b1[2], j0);
        o2[1] = FinishI8(a21, xf[2], xsum[2], w1r, k, kk, scale[j0 + 1],
                         zero[j0 + 1], b0[2], b1[2], j0 + 1);
        o3[0] = FinishI8(a30, xf[3], xsum[3], w0r, k, kk, scale[j0],
                         zero[j0], b0[3], b1[3], j0);
        o3[1] = FinishI8(a31, xf[3], xsum[3], w1r, k, kk, scale[j0 + 1],
                         zero[j0 + 1], b0[3], b1[3], j0 + 1);
      }
      for (int64_t j = np * kGemmNr; j < n; ++j) {
        for (int64_t r = 0; r < kGemmMr; ++r) {
          out[(i0 + r) * n + j] = DotBiasI8(xf[r], xsum[r], w + j * k, k,
                                            scale[j], zero[j], b0[r], b1[r],
                                            j);
        }
      }
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        for (int64_t j = 0; j < n; ++j) {
          out[(i0 + r) * n + j] = DotBiasI8(xf[r], xsum[r], w + j * k, k,
                                            scale[j], zero[j], b0[r], b1[r],
                                            j);
        }
      }
    }
  }
}

// Routes one batched GEMV through the blocked kernels. Thread partitioning
// runs over whole bands (grain 1 band = kGemmMr activation rows x all n
// outputs) so a micro-tile is never split; each band's outputs depend only
// on (x, w), not on which chunk computed them.
void GemmBlocked(const double* x, int64_t ldx, const PackedMatrix& w,
                 const float* bias, const float* bias2, const int* bias_row,
                 float* out, int64_t m, int64_t n) {
  const int64_t k = w.cols;
  const int64_t bands = (m + kGemmMr - 1) / kGemmMr;
  switch (w.precision) {
    case Precision::kDouble:
      ParallelFor(bands, 1, [&](int64_t b0, int64_t b1) {
        GemmBandsD(x, ldx, w.d.data(), w.pd.data(), bias, bias2, bias_row,
                   out, m, k, n, b0, b1);
      });
      return;
    case Precision::kBf16:
      ParallelFor(bands, 1, [&](int64_t b0, int64_t b1) {
        GemmBandsBf16(x, ldx, w.h.data(), w.ph.data(), bias, bias2, bias_row,
                      out, m, k, n, b0, b1);
      });
      return;
    case Precision::kInt8:
      ParallelFor(bands, 1, [&](int64_t b0, int64_t b1) {
        GemmBandsI8(x, ldx, w.q.data(), w.pq.data(), w.scale.data(),
                    w.zero.data(), bias, bias2, bias_row, out, m, k, n, b0,
                    b1);
      });
      return;
  }
}

}  // namespace

void ToDouble(const float* src, double* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

void LinearForward(const double* x, int64_t ldx, const double* w, int64_t ldw,
                   const float* bias, const float* bias2, float* out,
                   int64_t m, int64_t k, int64_t n) {
  // Flat partition over output elements (i, j): chunk boundaries depend only
  // on (m*n, kDotGrain) and each element's accumulation order is fixed, so
  // the schedule is invisible in the result.
  ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
    LinearChunk(x, ldx, w, ldw, bias, bias2, out, k, n, begin, end);
  });
}

void LinearForwardRowBias(const double* x, int64_t ldx, const double* w,
                          int64_t ldw, const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t m,
                          int64_t k, int64_t n) {
  ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
    LinearChunkRowBias(x, ldx, w, ldw, bias, bias2, bias_row, out, k, n,
                       begin, end);
  });
}

PackedMatrix PackedMatrix::Pack(const float* w, int64_t rows, int64_t cols,
                                int64_t ldw, Precision precision) {
  PackedMatrix p;
  p.precision = precision;
  p.rows = rows;
  p.cols = cols;
  const size_t numel = static_cast<size_t>(rows * cols);
  switch (precision) {
    case Precision::kDouble: {
      p.d.resize(numel);
      for (int64_t r = 0; r < rows; ++r) {
        ToDouble(w + r * ldw, p.d.data() + r * cols, cols);
      }
      break;
    }
    case Precision::kBf16: {
      p.h.resize(numel);
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          p.h[static_cast<size_t>(r * cols + c)] = PackBf16(w[r * ldw + c]);
        }
      }
      break;
    }
    case Precision::kInt8: {
      p.q.resize(numel);
      p.scale.resize(static_cast<size_t>(rows));
      p.zero.resize(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        const float* row = w + r * ldw;
        float mn = cols > 0 ? row[0] : 0.0f;
        float mx = mn;
        for (int64_t c = 1; c < cols; ++c) {
          mn = std::min(mn, row[c]);
          mx = std::max(mx, row[c]);
        }
        const double range = static_cast<double>(mx) - static_cast<double>(mn);
        const double amax = std::max(std::fabs(static_cast<double>(mn)),
                                     std::fabs(static_cast<double>(mx)));
        // (Near-)constant rows get scale = |value| so the zero-point lands
        // one step away and reconstructs the value exactly; the relative
        // cutoff also keeps w/scale far from integer overflow.
        const double s = range > amax * 1e-6
                             ? range / 255.0
                             : std::max(amax, 1e-12);
        p.scale[static_cast<size_t>(r)] = static_cast<float>(s);
        // Quantize against the float32 scale actually stored, so the kernel
        // and Dequant reproduce the packer's arithmetic exactly.
        const double sf =
            static_cast<double>(p.scale[static_cast<size_t>(r)]);
        const int32_t z = static_cast<int32_t>(
            std::lround(-128.0 - static_cast<double>(mn) / sf));
        p.zero[static_cast<size_t>(r)] = z;
        for (int64_t c = 0; c < cols; ++c) {
          const long qi =
              std::lround(static_cast<double>(row[c]) / sf) +
              static_cast<long>(z);
          p.q[static_cast<size_t>(r * cols + c)] = static_cast<int8_t>(
              std::clamp<long>(qi, -128, 127));
        }
      }
      break;
    }
  }
  return p;
}

double PackedMatrix::Dequant(int64_t r, int64_t c) const {
  const size_t e = static_cast<size_t>(r * cols + c);
  switch (precision) {
    case Precision::kDouble:
      return d[e];
    case Precision::kBf16:
      return static_cast<double>(UnpackBf16(h[e]));
    case Precision::kInt8:
      return static_cast<double>(scale[static_cast<size_t>(r)]) *
             (static_cast<double>(q[e]) -
              static_cast<double>(zero[static_cast<size_t>(r)]));
  }
  return 0.0;
}

size_t PackedMatrix::PackedBytes() const {
  return d.size() * sizeof(double) + h.size() * sizeof(uint16_t) +
         q.size() * sizeof(int8_t) + scale.size() * sizeof(float) +
         zero.size() * sizeof(int32_t);
}

void PackedMatrix::BuildPanels() {
  if (has_panels()) return;
  const int64_t bw = PanelBlock();
  const int64_t np = rows / kGemmNr;  // full panels of kGemmNr rows
  const int64_t kb = cols / bw;       // full K vector blocks
  // A matrix too small for even one full panel/block gains nothing from
  // blocking; GemvForward keeps the chunk path when has_panels() is false.
  if (np == 0 || kb == 0) return;
  const size_t numel = static_cast<size_t>(np * kb * kGemmNr * bw);
  // panel[p][b][r][lane] = element (p*kGemmNr + r, b*bw + lane): the
  // micro-kernel streams one contiguous panel per K block instead of
  // kGemmNr strided rows.
  const auto fill = [&](auto* dst, const auto* src) {
    size_t e = 0;
    for (int64_t p = 0; p < np; ++p) {
      for (int64_t b = 0; b < kb; ++b) {
        for (int64_t r = 0; r < kGemmNr; ++r) {
          const auto* row = src + (p * kGemmNr + r) * cols + b * bw;
          for (int64_t l = 0; l < bw; ++l) dst[e++] = row[l];
        }
      }
    }
  };
  switch (precision) {
    case Precision::kDouble:
      pd.resize(numel);
      fill(pd.data(), d.data());
      break;
    case Precision::kBf16:
      ph.resize(numel);
      fill(ph.data(), h.data());
      break;
    case Precision::kInt8:
      pq.resize(numel);
      fill(pq.data(), q.data());
      break;
  }
}

size_t PackedMatrix::PanelBytes() const {
  return pd.size() * sizeof(double) + ph.size() * sizeof(uint16_t) +
         pq.size() * sizeof(int8_t);
}

void GemvForward(const double* x, int64_t ldx, const PackedMatrix& w,
                 const float* bias, const float* bias2, float* out, int64_t m,
                 int64_t n) {
  DEEPST_DCHECK(w.rows == n);
  const int64_t k = w.cols;
  if (m > 1 && w.has_panels()) {
    GemmBlocked(x, ldx, w, bias, bias2, nullptr, out, m, n);
    return;
  }
  switch (w.precision) {
    case Precision::kDouble:
      LinearForward(x, ldx, w.d.data(), k, bias, bias2, out, m, k, n);
      return;
    case Precision::kBf16:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkBf16(x, ldx, w.h.data(), bias, bias2, out, k, n, begin, end);
      });
      return;
    case Precision::kInt8:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkI8(x, ldx, w.q.data(), w.scale.data(), w.zero.data(), bias,
                    bias2, out, k, n, begin, end);
      });
      return;
  }
}

void GemvForwardRowBias(const double* x, int64_t ldx, const PackedMatrix& w,
                        const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t m,
                        int64_t n) {
  DEEPST_DCHECK(w.rows == n);
  const int64_t k = w.cols;
  if (m > 1 && w.has_panels()) {
    GemmBlocked(x, ldx, w, bias, bias2, bias_row, out, m, n);
    return;
  }
  switch (w.precision) {
    case Precision::kDouble:
      LinearForwardRowBias(x, ldx, w.d.data(), k, bias, bias2, bias_row, out,
                           m, k, n);
      return;
    case Precision::kBf16:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkBf16RowBias(x, ldx, w.h.data(), bias, bias2, bias_row, out,
                             k, n, begin, end);
      });
      return;
    case Precision::kInt8:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkI8RowBias(x, ldx, w.q.data(), w.scale.data(), w.zero.data(),
                           bias, bias2, bias_row, out, k, n, begin, end);
      });
      return;
  }
}

void GruGates(const Tensor& gi, const Tensor& gh, const Tensor& h_prev,
              Tensor* h_out) {
  const int64_t batch = gi.dim(0);
  const int64_t hd = h_prev.dim(1);
  DEEPST_DCHECK(gi.dim(1) == 3 * hd && gh.dim(1) == 3 * hd);
  DEEPST_DCHECK(h_out->dim(0) == batch && h_out->dim(1) == hd);
  const float* gip = gi.data();
  const float* ghp = gh.data();
  const float* hp = h_prev.data();
  float* op = h_out->data();
  kernels::RowLoop(batch, [gip, ghp, hp, op, hd](int64_t b) {
    const float* gi_r = gip + b * 3 * hd;
    const float* gi_z = gi_r + hd;
    const float* gi_n = gi_r + 2 * hd;
    const float* gh_r = ghp + b * 3 * hd;
    const float* gh_z = gh_r + hd;
    const float* gh_n = gh_r + 2 * hd;
    const float* hrow = hp + b * hd;
    float* orow = op + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      const float r = 1.0f / (1.0f + std::exp(-(gi_r[j] + gh_r[j])));
      const float z = 1.0f / (1.0f + std::exp(-(gi_z[j] + gh_z[j])));
      const float n = std::tanh(gi_n[j] + r * gh_n[j]);
      orow[j] = (1.0f - z) * n + z * hrow[j];
    }
  });
}

GruStackView GruStackView::Of(const StackedGru& gru, int64_t emb_dim,
                              Precision precision) {
  GruStackView view;
  view.hidden_dim = gru.hidden_dim();
  view.cells.reserve(static_cast<size_t>(gru.num_layers()));
  for (int l = 0; l < gru.num_layers(); ++l) {
    const GruCell& cell = gru.cell(l);
    GruCellView v;
    v.b_ih = &cell.b_ih();
    v.b_hh = &cell.b_hh();
    v.input_dim = cell.input_dim();
    v.hidden_dim = cell.hidden_dim();
    const int64_t h3 = 3 * cell.hidden_dim();
    const float* wih = cell.w_ih().data();
    if (l == 0) {
      // Split input: pack only the per-step embedding columns; the context
      // columns stay exact doubles (folded once per query, see GruCellView).
      const int64_t ctx_dim = cell.input_dim() - emb_dim;
      v.w_ih =
          PackedMatrix::Pack(wih, h3, emb_dim, cell.input_dim(), precision);
      v.w_ih_ctx.resize(static_cast<size_t>(h3 * ctx_dim));
      for (int64_t r = 0; r < h3; ++r) {
        ToDouble(wih + r * cell.input_dim() + emb_dim,
                 v.w_ih_ctx.data() + r * ctx_dim, ctx_dim);
      }
    } else {
      v.w_ih = PackedMatrix::Pack(wih, h3, cell.input_dim(),
                                  cell.input_dim(), precision);
    }
    v.w_hh = PackedMatrix::Pack(cell.w_hh().data(), h3, cell.hidden_dim(),
                                cell.hidden_dim(), precision);
    view.cells.push_back(std::move(v));
  }
  return view;
}

}  // namespace infer
}  // namespace nn
}  // namespace deepst
