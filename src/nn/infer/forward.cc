#include "nn/infer/forward.h"

#include <cmath>
#include <cstring>

#include "nn/backend.h"
#include "nn/kernels.h"

// Runtime ISA dispatch for the GEMV kernel: the 8-lane double loop is plain
// IEEE arithmetic with a source-fixed accumulation order, so every clone
// computes bitwise-identical results and the dispatch only affects speed.
// Disabled under sanitizers (ifunc resolvers run before their runtimes
// initialize) and off x86-64 ELF targets.
#if defined(__GNUC__) && defined(__x86_64__) && defined(__ELF__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define DEEPST_INFER_CLONES \
  __attribute__((target_clones("avx512f", "avx2,fma", "default")))
#else
#define DEEPST_INFER_CLONES
#endif

namespace deepst {
namespace nn {
namespace infer {
namespace {

typedef double Vec8 __attribute__((vector_size(64)));

// One output element: an 8-lane double dot over k, lanes combined pairwise
// in a fixed order, plus the optional biases. Inlined into each ISA clone
// of LinearChunk so the lane arithmetic picks up the clone's vector width.
inline float DotBias(const double* xrow, const double* wrow, int64_t k,
                     const float* bias, const float* bias2, int64_t j) {
  Vec8 acc = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    Vec8 xv, wv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&wv, wrow + kk, sizeof(wv));
    acc += xv * wv;
  }
  double tail = 0.0;
  for (; kk < k; ++kk) tail += xrow[kk] * wrow[kk];
  const double sum = (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                      ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
                     tail;
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// One contiguous run [begin, end) of the flat row-major output; (i, j) are
// tracked incrementally to keep integer divisions out of the loop.
DEEPST_INFER_CLONES
void LinearChunk(const double* x, int64_t ldx, const double* w, int64_t ldw,
                 const float* bias, const float* bias2, float* out, int64_t k,
                 int64_t n, int64_t begin, int64_t end) {
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    out[e] = DotBias(x + i * ldx, w + j * ldw, k, bias, bias2, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

// Row-mapped bias counterpart of LinearChunk: the bias rows live in a
// [num_queries, n] block and `bias_row[i]` picks the row for output row i.
// Reuses DotBias with per-row-offset pointers, so each element's arithmetic
// is exactly LinearChunk's.
DEEPST_INFER_CLONES
void LinearChunkRowBias(const double* x, int64_t ldx, const double* w,
                        int64_t ldw, const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t k, int64_t n,
                        int64_t begin, int64_t end) {
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    out[e] = DotBias(x + i * ldx, w + j * ldw, k,
                     bias != nullptr ? bias + off : nullptr,
                     bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

}  // namespace

void ToDouble(const float* src, double* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

void LinearForward(const double* x, int64_t ldx, const double* w, int64_t ldw,
                   const float* bias, const float* bias2, float* out,
                   int64_t m, int64_t k, int64_t n) {
  // Flat partition over output elements (i, j): chunk boundaries depend only
  // on (m*n, kDotGrain) and each element's accumulation order is fixed, so
  // the schedule is invisible in the result.
  ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
    LinearChunk(x, ldx, w, ldw, bias, bias2, out, k, n, begin, end);
  });
}

void LinearForwardRowBias(const double* x, int64_t ldx, const double* w,
                          int64_t ldw, const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t m,
                          int64_t k, int64_t n) {
  ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
    LinearChunkRowBias(x, ldx, w, ldw, bias, bias2, bias_row, out, k, n,
                       begin, end);
  });
}

void GruGates(const Tensor& gi, const Tensor& gh, const Tensor& h_prev,
              Tensor* h_out) {
  const int64_t batch = gi.dim(0);
  const int64_t hd = h_prev.dim(1);
  DEEPST_DCHECK(gi.dim(1) == 3 * hd && gh.dim(1) == 3 * hd);
  DEEPST_DCHECK(h_out->dim(0) == batch && h_out->dim(1) == hd);
  const float* gip = gi.data();
  const float* ghp = gh.data();
  const float* hp = h_prev.data();
  float* op = h_out->data();
  kernels::RowLoop(batch, [gip, ghp, hp, op, hd](int64_t b) {
    const float* gi_r = gip + b * 3 * hd;
    const float* gi_z = gi_r + hd;
    const float* gi_n = gi_r + 2 * hd;
    const float* gh_r = ghp + b * 3 * hd;
    const float* gh_z = gh_r + hd;
    const float* gh_n = gh_r + 2 * hd;
    const float* hrow = hp + b * hd;
    float* orow = op + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      const float r = 1.0f / (1.0f + std::exp(-(gi_r[j] + gh_r[j])));
      const float z = 1.0f / (1.0f + std::exp(-(gi_z[j] + gh_z[j])));
      const float n = std::tanh(gi_n[j] + r * gh_n[j]);
      orow[j] = (1.0f - z) * n + z * hrow[j];
    }
  });
}

GruStackView GruStackView::Of(const StackedGru& gru) {
  GruStackView view;
  view.hidden_dim = gru.hidden_dim();
  view.cells.reserve(static_cast<size_t>(gru.num_layers()));
  for (int l = 0; l < gru.num_layers(); ++l) {
    const GruCell& cell = gru.cell(l);
    GruCellView v;
    v.b_ih = &cell.b_ih();
    v.b_hh = &cell.b_hh();
    v.input_dim = cell.input_dim();
    v.hidden_dim = cell.hidden_dim();
    v.w_ih.resize(static_cast<size_t>(cell.w_ih().numel()));
    ToDouble(cell.w_ih().data(), v.w_ih.data(), cell.w_ih().numel());
    v.w_hh.resize(static_cast<size_t>(cell.w_hh().numel()));
    ToDouble(cell.w_hh().data(), v.w_hh.data(), cell.w_hh().numel());
    view.cells.push_back(std::move(v));
  }
  return view;
}

}  // namespace infer
}  // namespace nn
}  // namespace deepst
