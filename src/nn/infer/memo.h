#ifndef DEEPST_NN_INFER_MEMO_H_
#define DEEPST_NN_INFER_MEMO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace deepst {
namespace nn {
namespace infer {

// 128-bit memoization key. A transition distribution is a pure function of
// (model weights, context tensors, token prefix), so the key is built as an
// incremental hash chain: a context signature over the exact context tensor
// bytes, then one MixKey per token fed. Hashing the raw float bytes means a
// traffic-snapshot change produces new keys by construction; weight changes
// are covered by the epoch (DeepSTModel invalidates on pool retirement).
struct MemoKey {
  uint64_t a = 0;
  uint64_t b = 0;

  bool operator==(const MemoKey& o) const { return a == o.a && b == o.b; }
};

// Extends a key by one 64-bit value (e.g. a token); splitmix64-style
// finalizers on both halves keep the chain well mixed.
MemoKey MixKey(const MemoKey& k, uint64_t v);
// Folds `len` raw bytes into a key (context tensor signatures).
MemoKey HashBytesKey(const void* data, size_t len, const MemoKey& seed);

// Counter snapshot; hits + misses == lookups holds exactly (each Lookup
// increments lookups and exactly one of hits/misses before returning).
struct MemoStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t invalidations = 0;
  uint64_t epoch = 0;
  int64_t capacity = 0;  // entries (0 = cache disabled/absent)
};

// Shared transition-distribution cache for the inference fast path: maps a
// MemoKey to the post-step value of one hypothesis — the [N_max] logits row
// plus the [layers, H] hidden state — so a hit skips every GEMV of the step
// AND leaves a state the next step can continue from. Entries are copies of
// kernel outputs, so a hit is bitwise identical to recomputing (the kernels
// are row-local and batch-invariant; parity is asserted in quant_test).
//
// Layout: `kShards` independently-locked shards, each a 2-way
// set-associative array with per-way LRU ticks. Lock hold times are one
// entry copy (~(N_max + layers*H) floats), so a session pool hammering the
// cache contends only on same-set probes.
//
// Epochs: every entry carries the epoch it was inserted under. Invalidate()
// bumps the global epoch (O(1) wholesale invalidation — no sweep); Lookup
// and Insert both take the epoch the *query* pinned at PrepareContext time,
// so an in-flight query keeps a self-consistent view across a swap and a
// stale-epoch entry is never served to a new-epoch query. Epoch 0 is
// reserved for empty ways.
class TransitionMemoCache {
 public:
  // `capacity` is the total entry budget; rounded up so each shard holds at
  // least one 2-way set.
  TransitionMemoCache(int64_t logits_len, int num_layers, int64_t hidden_dim,
                      int64_t capacity);

  int64_t logits_len() const { return logits_len_; }
  int num_layers() const { return num_layers_; }
  int64_t hidden_dim() const { return hidden_dim_; }

  // Epoch queries pin at PrepareContext time.
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  // Wholesale invalidation (traffic-snapshot or model-weight swap): bumps
  // the epoch so every existing entry stops matching.
  void Invalidate();

  // On hit, copies the entry into logits_out ([logits_len] floats) and
  // states_out[l] ([hidden_dim] floats per layer) and refreshes LRU.
  bool Lookup(const MemoKey& key, uint64_t epoch, float* logits_out,
              float* const* states_out);
  // Inserts (or refreshes) an entry under `epoch`, evicting the set's LRU
  // way. An insert tagged with an already-stale epoch is harmless: no
  // current-epoch lookup can match it.
  void Insert(const MemoKey& key, uint64_t epoch, const float* logits,
              const float* const* states);

  MemoStats stats() const;

 private:
  static constexpr int kShards = 8;
  static constexpr int kWays = 2;

  struct Way {
    MemoKey key;
    uint64_t epoch = 0;  // 0 = empty
    uint64_t tick = 0;
  };
  struct Shard {
    std::mutex mu;
    std::vector<Way> ways;    // [sets * kWays]
    std::vector<float> data;  // [sets * kWays, entry_floats]
    uint64_t tick = 0;
  };

  Shard& ShardOf(const MemoKey& key) {
    return shards_[static_cast<size_t>(key.a % kShards)];
  }
  int64_t SetOf(const MemoKey& key) const {
    return static_cast<int64_t>(key.b % static_cast<uint64_t>(sets_));
  }
  void CopyOut(const Shard& shard, int64_t way_index, float* logits_out,
               float* const* states_out) const;
  void CopyIn(Shard* shard, int64_t way_index, const float* logits,
              const float* const* states);

  int64_t logits_len_;
  int num_layers_;
  int64_t hidden_dim_;
  int64_t entry_floats_;
  int64_t sets_;  // per shard
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> epoch_{1};
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> insertions_{0};
  mutable std::atomic<int64_t> invalidations_{0};
};

}  // namespace infer
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_INFER_MEMO_H_
