#ifndef DEEPST_NN_VARIABLE_H_
#define DEEPST_NN_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace deepst {
namespace nn {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

// One node of the define-by-run reverse-mode autodiff tape. Ops (see
// nn/ops.h) create Variables whose `backward_fn` propagates the node's
// accumulated gradient into its parents' gradients.
//
// Gradients are accumulated (+=) so diamond-shaped graphs work; call
// ZeroGrad()/optimizer ZeroGrad between steps.
class Variable {
 public:
  explicit Variable(Tensor value, bool requires_grad = false)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  Variable(const Variable&) = delete;
  Variable& operator=(const Variable&) = delete;

  Tensor& value() { return value_; }
  const Tensor& value() const { return value_; }

  // Gradient tensor, lazily allocated with the value's shape. For a
  // parameter bound to a gradient slot (set_param_slot), a thread with an
  // active GradShard (nn/arena.h) gets the shard's private slot tensor
  // instead, so concurrent training shards accumulate without racing.
  Tensor& grad();
  bool has_grad() const { return grad_.numel() > 0; }
  void ZeroGrad();

  // Gradient-slot binding for data-parallel training. -1 (the default)
  // means grad() always resolves to this node's own gradient.
  int64_t param_slot() const { return param_slot_; }
  void set_param_slot(int64_t slot) { param_slot_ = slot; }

  // Internal: dense per-arena node id (nn::AutodiffArena). Lets Backward's
  // topological sort track visited arena nodes with a flat stamp vector
  // instead of a hash set.
  int64_t arena_index() const { return arena_index_; }
  void set_arena_index(int64_t index) { arena_index_ = index; }

  // Internal: re-initializes a pooled node as a fresh leaf holding `value`.
  // The previous value/gradient storage, parents and backward closure are
  // dropped (recycled into the active arena's pools). Keeps arena_index;
  // never called on parameters, so param_slot stays -1.
  void ResetForReuse(Tensor value, bool requires_grad);

  bool requires_grad() const { return requires_grad_; }
  void set_requires_grad(bool v) { requires_grad_ = v; }

  const std::vector<VarPtr>& parents() const { return parents_; }

  // Internal: used by op constructors.
  void SetParents(std::vector<VarPtr> parents);
  void SetBackwardFn(std::function<void(Variable*)> fn) {
    backward_fn_ = std::move(fn);
  }
  bool has_backward_fn() const { return static_cast<bool>(backward_fn_); }
  void RunBackward() {
    if (backward_fn_) backward_fn_(this);
  }

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  int64_t param_slot_ = -1;
  int64_t arena_index_ = -1;
  std::vector<VarPtr> parents_;
  std::function<void(Variable*)> backward_fn_;
};

// Creates a leaf variable (no parents). Parameters pass requires_grad=true;
// constants (inputs, targets) pass false.
VarPtr MakeVar(Tensor value, bool requires_grad = false);
VarPtr Constant(Tensor value);

// Thread-local gradient mode. While disabled, ops produce plain value nodes:
// no parents, no backward closures, requires_grad=false even downstream of
// parameters — so inference-built graphs hold no references into the
// parameter subgraph and TopoSort never walks it. Inference entry points
// (scoring, prediction, context building) run under a NoGradGuard.
bool GradEnabled();

class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

// Runs reverse-mode accumulation from `root`, which must be a scalar
// (numel()==1) unless `seed_with_ones` tensors of other shapes are wanted.
// Root gradient is seeded with ones. Visits each reachable grad-requiring
// node exactly once in reverse topological order.
void Backward(const VarPtr& root);

// Same, seeding the root gradient with `seed` instead of 1. The sharded
// trainer seeds each shard's mean loss with (shard size / batch size), so
// the per-shard gradients sum exactly to the batch-mean gradient.
void Backward(const VarPtr& root, float seed);

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_VARIABLE_H_
