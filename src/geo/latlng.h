#ifndef DEEPST_GEO_LATLNG_H_
#define DEEPST_GEO_LATLNG_H_

#include "geo/point.h"

namespace deepst {
namespace geo {

// WGS-84 latitude/longitude in degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

// Haversine great-circle distance in meters.
double HaversineMeters(const LatLng& a, const LatLng& b);

// Equirectangular projection anchored at a reference coordinate, accurate to
// well under 1% at city scale -- the paper's destination coordinates are
// "rough" lat/lng pairs, so this is the boundary converter between GPS
// coordinates and the library's local metric frame.
class LocalProjection {
 public:
  explicit LocalProjection(LatLng origin);

  Point ToLocal(const LatLng& ll) const;
  LatLng ToLatLng(const Point& p) const;

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lng_;
};

}  // namespace geo
}  // namespace deepst

#endif  // DEEPST_GEO_LATLNG_H_
