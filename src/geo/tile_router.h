#ifndef DEEPST_GEO_TILE_ROUTER_H_
#define DEEPST_GEO_TILE_ROUTER_H_

#include "geo/grid.h"
#include "geo/point.h"

namespace deepst {
namespace geo {

// Partitions a grid's row/col space into rectangular region tiles and routes
// cells (and points) to the shard that owns them. Sharded spatial serving
// (ShardedSpatialIndex, TrafficTensorCache) keys its per-shard storage off
// this, so a lookup touches exactly one shard's arrays -- shard-affine
// routing. Tiles are contiguous row/col blocks, so cell -> shard and cell ->
// local-slot are pure arithmetic.
class TileRouter {
 public:
  // Splits `grid` into about `target_shards` tiles (at least 1), keeping
  // tiles roughly square in cell counts. The actual shard count is
  // tiles_x * tiles_y and may differ slightly from the target.
  TileRouter(const GridSpec& grid, int target_shards);

  int num_shards() const { return tiles_r_ * tiles_c_; }

  // Shard owning grid cell (row, col).
  int ShardOfCell(int row, int col) const {
    return TileOfRow(row) * tiles_c_ + TileOfCol(col);
  }
  // Shard owning the cell containing p (clamped to the grid).
  int ShardOf(const Point& p) const {
    return ShardOfCell(grid_.RowOf(p), grid_.ColOf(p));
  }

  // Row/col block owned by a shard: rows [r0, r1) x cols [c0, c1).
  struct CellRange {
    int r0 = 0, r1 = 0, c0 = 0, c1 = 0;
    int rows() const { return r1 - r0; }
    int cols() const { return c1 - c0; }
    int num_cells() const { return rows() * cols(); }
  };
  CellRange RangeOf(int shard) const;

  // Local cell slot of (row, col) inside its owning shard's range.
  int LocalCell(int shard, int row, int col) const {
    const CellRange r = RangeOf(shard);
    return (row - r.r0) * r.cols() + (col - r.c0);
  }

  const GridSpec& grid() const { return grid_; }

 private:
  int TileOfRow(int row) const {
    // Inverse of the split in RangeOf: block t owns rows
    // [t * rows / tiles_r, (t+1) * rows / tiles_r).
    return static_cast<int>((static_cast<long long>(row) + 1) * tiles_r_ - 1) /
           grid_.rows();
  }
  int TileOfCol(int col) const {
    return static_cast<int>((static_cast<long long>(col) + 1) * tiles_c_ - 1) /
           grid_.cols();
  }

  GridSpec grid_;
  int tiles_r_ = 1;
  int tiles_c_ = 1;
};

}  // namespace geo
}  // namespace deepst

#endif  // DEEPST_GEO_TILE_ROUTER_H_
