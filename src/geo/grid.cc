#include "geo/grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace deepst {
namespace geo {

GridSpec::GridSpec(const BoundingBox& box, double cell_size)
    : box_(box), cell_size_(cell_size) {
  DEEPST_CHECK_GT(cell_size, 0.0);
  rows_ = std::max(1, static_cast<int>(std::ceil(box.Height() / cell_size)));
  cols_ = std::max(1, static_cast<int>(std::ceil(box.Width() / cell_size)));
}

int GridSpec::RowOf(const Point& p) const {
  const int r = static_cast<int>((p.y - box_.min.y) / cell_size_);
  return std::clamp(r, 0, rows_ - 1);
}

int GridSpec::ColOf(const Point& p) const {
  const int c = static_cast<int>((p.x - box_.min.x) / cell_size_);
  return std::clamp(c, 0, cols_ - 1);
}

Point GridSpec::CellCenter(int row, int col) const {
  return {box_.min.x + (col + 0.5) * cell_size_,
          box_.min.y + (row + 0.5) * cell_size_};
}

}  // namespace geo
}  // namespace deepst
