#ifndef DEEPST_GEO_GRID_H_
#define DEEPST_GEO_GRID_H_

#include <cstdint>

#include "geo/point.h"

namespace deepst {
namespace geo {

// Uniform cell partition of a bounding box, used by (a) the traffic tensor
// builder (the paper partitions the city into cells of 100-200 m and
// averages vehicle speed per cell, Section V-A) and (b) the road-network
// spatial index.
class GridSpec {
 public:
  // Builds a grid covering `box` with square cells of `cell_size` meters.
  GridSpec(const BoundingBox& box, double cell_size);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double cell_size() const { return cell_size_; }
  int num_cells() const { return rows_ * cols_; }
  const BoundingBox& box() const { return box_; }

  // Row/col of the cell containing p, clamped to the grid.
  int RowOf(const Point& p) const;
  int ColOf(const Point& p) const;
  // Flat cell index (row-major).
  int CellOf(const Point& p) const { return RowOf(p) * cols_ + ColOf(p); }

  // Center of a cell.
  Point CellCenter(int row, int col) const;

 private:
  BoundingBox box_;
  double cell_size_;
  int rows_;
  int cols_;
};

}  // namespace geo
}  // namespace deepst

#endif  // DEEPST_GEO_GRID_H_
