#include "geo/tile_router.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace deepst {
namespace geo {

TileRouter::TileRouter(const GridSpec& grid, int target_shards)
    : grid_(grid) {
  DEEPST_CHECK_GE(target_shards, 1);
  // Aim for tiles square in cell counts: tiles_r / tiles_c ~ rows / cols.
  const double rows = grid_.rows();
  const double cols = grid_.cols();
  const double aspect = rows / cols;
  int tr = static_cast<int>(std::lround(std::sqrt(target_shards * aspect)));
  tr = std::clamp(tr, 1, grid_.rows());
  int tc = (target_shards + tr - 1) / tr;
  tc = std::clamp(tc, 1, grid_.cols());
  tiles_r_ = tr;
  tiles_c_ = tc;
}

TileRouter::CellRange TileRouter::RangeOf(int shard) const {
  DEEPST_CHECK(shard >= 0 && shard < num_shards());
  const int tr = shard / tiles_c_;
  const int tc = shard % tiles_c_;
  CellRange r;
  r.r0 = static_cast<int>(static_cast<long long>(tr) * grid_.rows() /
                          tiles_r_);
  r.r1 = static_cast<int>(static_cast<long long>(tr + 1) * grid_.rows() /
                          tiles_r_);
  r.c0 = static_cast<int>(static_cast<long long>(tc) * grid_.cols() /
                          tiles_c_);
  r.c1 = static_cast<int>(static_cast<long long>(tc + 1) * grid_.cols() /
                          tiles_c_);
  return r;
}

}  // namespace geo
}  // namespace deepst
