#ifndef DEEPST_GEO_POINT_H_
#define DEEPST_GEO_POINT_H_

#include <cmath>

namespace deepst {
namespace geo {

// Planar point in a local metric frame (meters). The library does all
// geometry in local coordinates; LatLng conversion (latlng.h) is provided at
// the boundary for realistic I/O.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  double Dot(const Point& o) const { return x * o.x + y * o.y; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  double DistanceTo(const Point& o) const { return (*this - o).Norm(); }
};

inline bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}

// Axis-aligned bounding box.
struct BoundingBox {
  Point min{1e18, 1e18};
  Point max{-1e18, -1e18};

  void Extend(const Point& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }
  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
};

}  // namespace geo
}  // namespace deepst

#endif  // DEEPST_GEO_POINT_H_
