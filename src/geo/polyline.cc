#include "geo/polyline.h"

#include <cmath>

#include "util/check.h"

namespace deepst {
namespace geo {

double PolylineLength(PointSpan pts) {
  double len = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    len += pts[i - 1].DistanceTo(pts[i]);
  }
  return len;
}

Point ProjectOntoSegment(const Point& p, const Point& a, const Point& b) {
  const Point ab = b - a;
  const double len2 = ab.Dot(ab);
  if (len2 <= 0.0) return a;
  double t = (p - a).Dot(ab) / len2;
  t = std::max(0.0, std::min(1.0, t));
  return a + ab * t;
}

Projection ProjectOntoPolyline(const Point& p,
                               PointSpan pts) {
  DEEPST_CHECK_GE(pts.size(), 1u);
  Projection best;
  if (pts.size() == 1) {
    best.point = pts[0];
    best.distance = p.DistanceTo(pts[0]);
    return best;
  }
  best.distance = 1e18;
  double prefix = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const Point proj = ProjectOntoSegment(p, pts[i], pts[i + 1]);
    const double d = p.DistanceTo(proj);
    if (d < best.distance) {
      best.distance = d;
      best.point = proj;
      best.offset = prefix + pts[i].DistanceTo(proj);
      best.segment_index = static_cast<int>(i);
    }
    prefix += pts[i].DistanceTo(pts[i + 1]);
  }
  return best;
}

Point InterpolateAlong(PointSpan pts, double offset) {
  DEEPST_CHECK_GE(pts.size(), 1u);
  if (pts.size() == 1 || offset <= 0.0) return pts.front();
  double remaining = offset;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const double seg = pts[i].DistanceTo(pts[i + 1]);
    if (remaining <= seg && seg > 0.0) {
      const double t = remaining / seg;
      return pts[i] + (pts[i + 1] - pts[i]) * t;
    }
    remaining -= seg;
  }
  return pts.back();
}

double HeadingAtStart(PointSpan pts) {
  DEEPST_CHECK_GE(pts.size(), 2u);
  const Point d = pts[1] - pts[0];
  return std::atan2(d.y, d.x);
}

double HeadingAtEnd(PointSpan pts) {
  DEEPST_CHECK_GE(pts.size(), 2u);
  const Point d = pts[pts.size() - 1] - pts[pts.size() - 2];
  return std::atan2(d.y, d.x);
}

double AngleDiff(double a, double b) {
  double d = std::fabs(a - b);
  while (d > 2 * M_PI) d -= 2 * M_PI;
  if (d > M_PI) d = 2 * M_PI - d;
  return d;
}

}  // namespace geo
}  // namespace deepst
