#include "geo/latlng.h"

#include <cmath>

namespace deepst {
namespace geo {
namespace {

constexpr double kEarthRadiusM = 6371000.0;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(s));
}

LocalProjection::LocalProjection(LatLng origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusM * kDegToRad;
  meters_per_deg_lng_ =
      kEarthRadiusM * kDegToRad * std::cos(origin.lat * kDegToRad);
}

Point LocalProjection::ToLocal(const LatLng& ll) const {
  return {(ll.lng - origin_.lng) * meters_per_deg_lng_,
          (ll.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLng LocalProjection::ToLatLng(const Point& p) const {
  return {origin_.lat + p.y / meters_per_deg_lat_,
          origin_.lng + p.x / meters_per_deg_lng_};
}

}  // namespace geo
}  // namespace deepst
