#ifndef DEEPST_GEO_POLYLINE_H_
#define DEEPST_GEO_POLYLINE_H_

#include <vector>

#include "geo/point.h"
#include "util/span.h"

namespace deepst {
namespace geo {

// Read-only polyline view. Backed either by a std::vector (implicit
// conversion) or by points mapped straight out of a format-v3 file, so the
// geometry kernels below run identically over both.
using PointSpan = util::Span<Point>;

// Result of projecting a point onto a polyline.
struct Projection {
  Point point;            // closest point on the polyline
  double distance = 0.0;  // Euclidean distance from query to `point`
  double offset = 0.0;    // arc length from the polyline start to `point`
  int segment_index = 0;  // index of the polyline segment hit
};

// Total arc length of a polyline (>= 2 points required by callers that need
// a positive length; a single point yields 0).
double PolylineLength(PointSpan pts);

// Closest point on segment [a, b] to p.
Point ProjectOntoSegment(const Point& p, const Point& a, const Point& b);

// Projects `p` onto the polyline, minimizing Euclidean distance.
Projection ProjectOntoPolyline(const Point& p, PointSpan pts);

// Point at arc-length `offset` from the start (clamped to [0, length]).
Point InterpolateAlong(PointSpan pts, double offset);

// Heading (radians, atan2 convention) of the polyline at its start / end.
double HeadingAtStart(PointSpan pts);
double HeadingAtEnd(PointSpan pts);

// Absolute angular difference in [0, pi].
double AngleDiff(double a, double b);

}  // namespace geo
}  // namespace deepst

#endif  // DEEPST_GEO_POLYLINE_H_
