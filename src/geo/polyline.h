#ifndef DEEPST_GEO_POLYLINE_H_
#define DEEPST_GEO_POLYLINE_H_

#include <vector>

#include "geo/point.h"

namespace deepst {
namespace geo {

// Result of projecting a point onto a polyline.
struct Projection {
  Point point;            // closest point on the polyline
  double distance = 0.0;  // Euclidean distance from query to `point`
  double offset = 0.0;    // arc length from the polyline start to `point`
  int segment_index = 0;  // index of the polyline segment hit
};

// Total arc length of a polyline (>= 2 points required by callers that need
// a positive length; a single point yields 0).
double PolylineLength(const std::vector<Point>& pts);

// Closest point on segment [a, b] to p.
Point ProjectOntoSegment(const Point& p, const Point& a, const Point& b);

// Projects `p` onto the polyline, minimizing Euclidean distance.
Projection ProjectOntoPolyline(const Point& p, const std::vector<Point>& pts);

// Point at arc-length `offset` from the start (clamped to [0, length]).
Point InterpolateAlong(const std::vector<Point>& pts, double offset);

// Heading (radians, atan2 convention) of the polyline at its start / end.
double HeadingAtStart(const std::vector<Point>& pts);
double HeadingAtEnd(const std::vector<Point>& pts);

// Absolute angular difference in [0, pi].
double AngleDiff(double a, double b);

}  // namespace geo
}  // namespace deepst

#endif  // DEEPST_GEO_POLYLINE_H_
