#ifndef DEEPST_CORE_ROUTE_RANKING_H_
#define DEEPST_CORE_ROUTE_RANKING_H_

#include <vector>

#include "core/deepst_model.h"
#include "roadnet/spatial_index.h"

namespace deepst {
namespace core {

// A candidate route with its DeepST likelihood (paper Section IV-E: the
// model "outputs a probability value to indicate the likelihood of a route
// being traveled"). Supports the intro's downstream tasks: popular-routes
// discovery and ride-sharing pickup placement along likely routes.
struct RankedRoute {
  traj::Route route;
  double log_likelihood = 0.0;
  // Likelihoods normalized over the returned candidate set.
  double probability = 0.0;
};

// Enumerates up to `num_candidates` loopless routes between the query origin
// and the segment nearest the query destination (Yen's k-shortest paths over
// free-flow travel time), scores each with the model, and returns them
// sorted by descending likelihood.
std::vector<RankedRoute> RankCandidateRoutes(DeepSTModel* model,
                                             const roadnet::SpatialIndex& index,
                                             const RouteQuery& query,
                                             int num_candidates,
                                             util::Rng* rng);

// Ranks an explicit candidate set (e.g. historical routes between an OD
// pair) under the model.
std::vector<RankedRoute> RankRoutes(DeepSTModel* model,
                                    const RouteQuery& query,
                                    const std::vector<traj::Route>& candidates,
                                    util::Rng* rng);

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_ROUTE_RANKING_H_
