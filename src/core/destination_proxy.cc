#include "core/destination_proxy.h"

#include <algorithm>
#include <cmath>

#include "nn/ops.h"

namespace deepst {
namespace core {

namespace o = nn::ops;

DestinationProxyModel::DestinationProxyModel(int num_proxies, int dest_dim,
                                             const geo::BoundingBox& bounds,
                                             int mlp_hidden, util::Rng* rng)
    : num_proxies_(num_proxies) {
  DEEPST_CHECK_GE(num_proxies, 2);
  center_ = {(bounds.min.x + bounds.max.x) / 2.0,
             (bounds.min.y + bounds.max.y) / 2.0};
  scale_ = std::max(bounds.Width(), bounds.Height()) / 2.0;
  DEEPST_CHECK_GT(scale_, 0.0);

  encoder_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{2, mlp_hidden, num_proxies},
      nn::Activation::kLeakyRelu, rng);
  AddSubmodule("encoder", encoder_.get());
  // Proxy means spread over the normalized map; variances start moderate.
  means_ = AddParameter("means",
                        nn::Tensor::Uniform({num_proxies, 2}, -0.9f, 0.9f,
                                            rng));
  raw_vars_ = AddParameter("raw_vars",
                           nn::Tensor::Full({num_proxies, 2}, -2.0f));
  embeddings_ = AddParameter(
      "embeddings",
      nn::Tensor::Gaussian({num_proxies, dest_dim}, 0.0f,
                           1.0f / std::sqrt(static_cast<float>(dest_dim)),
                           rng));
}

nn::Tensor DestinationProxyModel::NormalizeDestinations(
    const std::vector<geo::Point>& dests) const {
  nn::Tensor x({static_cast<int64_t>(dests.size()), 2});
  for (size_t b = 0; b < dests.size(); ++b) {
    x.at(static_cast<int64_t>(b), 0) =
        static_cast<float>((dests[b].x - center_.x) / scale_);
    x.at(static_cast<int64_t>(b), 1) =
        static_cast<float>((dests[b].y - center_.y) / scale_);
  }
  return x;
}

nn::VarPtr DestinationProxyModel::EncodeLogits(
    const nn::Tensor& x_normalized) const {
  return encoder_->Forward(nn::Constant(x_normalized));
}

nn::VarPtr DestinationProxyModel::SamplePi(const nn::VarPtr& logits, float tau,
                                           util::Rng* rng) const {
  return o::GumbelSoftmaxSample(logits, tau, rng);
}

nn::VarPtr DestinationProxyModel::ModePi(const nn::VarPtr& logits) const {
  const nn::Tensor& lv = logits->value();
  nn::Tensor onehot = nn::Tensor::Zeros(lv.shape());
  for (int64_t r = 0; r < lv.dim(0); ++r) {
    int64_t best = 0;
    for (int64_t c = 1; c < lv.dim(1); ++c) {
      if (lv.at(r, c) > lv.at(r, best)) best = c;
    }
    onehot.at(r, best) = 1.0f;
  }
  return nn::Constant(std::move(onehot));
}

nn::VarPtr DestinationProxyModel::Embed(const nn::VarPtr& pi) const {
  // [B, K] @ [K, dest_dim]
  return o::MatMul(pi, embeddings_);
}

nn::VarPtr DestinationProxyModel::DestinationLogProb(
    const nn::Tensor& x_normalized, const nn::VarPtr& pi,
    const nn::Tensor& row_weights) const {
  nn::VarPtr mean = o::MatMul(pi, means_);  // [B, 2]
  // diag(S pi): softplus keeps variances positive; floor avoids collapse.
  nn::VarPtr var =
      o::ScalarAdd(o::Softplus(o::MatMul(pi, raw_vars_)), 1e-3f);
  return o::GaussianLogProb(x_normalized, mean, var, row_weights);
}

nn::VarPtr DestinationProxyModel::Kl(const nn::VarPtr& logits) const {
  return o::CategoricalKlToUniform(logits);
}

std::vector<geo::Point> DestinationProxyModel::ProxyCentersWorld() const {
  std::vector<geo::Point> out;
  const nn::Tensor& m = means_->value();
  out.reserve(static_cast<size_t>(num_proxies_));
  for (int k = 0; k < num_proxies_; ++k) {
    out.push_back({center_.x + m.at(k, 0) * scale_,
                   center_.y + m.at(k, 1) * scale_});
  }
  return out;
}

int DestinationProxyModel::AllocateProxy(const geo::Point& dest) const {
  nn::Tensor x = NormalizeDestinations({dest});
  nn::VarPtr logits = EncodeLogits(x);
  return static_cast<int>(logits->value().ArgMax());
}

}  // namespace core
}  // namespace deepst
