#ifndef DEEPST_CORE_TRAINER_H_
#define DEEPST_CORE_TRAINER_H_

#include <vector>

#include "core/deepst_model.h"
#include "nn/optimizer.h"
#include "traj/types.h"

namespace deepst {
namespace core {

// Training configuration (Algorithm 1 + the paper's Section V-A settings,
// scaled down).
struct TrainerConfig {
  int batch_size = 64;    // paper: 128
  int max_epochs = 35;    // paper: 15 (our scaled model needs more passes)
  float learning_rate = 3e-3f;
  float grad_clip = 10.0f;
  // Early stopping: stop after `patience` epochs without validation
  // improvement (paper uses early stopping on the validation set).
  int patience = 7;
  bool verbose = true;
  uint64_t seed = 99;
  // Compute threads for kernels and batch-parallel evaluation. 0 leaves the
  // process-wide nn::Backend untouched; N >= 1 installs an N-thread backend
  // before training/evaluation (1 = serial). Results are bitwise identical
  // for every value (see docs/parallelism.md).
  int num_threads = 0;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;      // mean per-trip loss
  double train_route_ce = 0.0;  // mean per-transition route CE
  double val_route_ce = 0.0;    // mean per-transition validation CE
  double seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  int best_epoch = 0;
};

// Minibatch SGD driver for DeepSTModel (Algorithm 1). Trips are bucketed by
// route length to limit padding waste, and batch order is shuffled per
// epoch.
class Trainer {
 public:
  Trainer(DeepSTModel* model, const TrainerConfig& config);

  TrainResult Fit(const std::vector<const traj::TripRecord*>& train,
                  const std::vector<const traj::TripRecord*>& validation);

  // Mean per-transition route cross-entropy on a dataset (no grad).
  double EvaluateRouteCe(const std::vector<const traj::TripRecord*>& data);

 private:
  DeepSTModel* model_;
  TrainerConfig config_;
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_TRAINER_H_
