#ifndef DEEPST_CORE_TRAINER_H_
#define DEEPST_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/deepst_model.h"
#include "nn/optimizer.h"
#include "traj/types.h"
#include "util/status.h"

namespace deepst {
namespace core {

// Training configuration (Algorithm 1 + the paper's Section V-A settings,
// scaled down).
struct TrainerConfig {
  int batch_size = 64;    // paper: 128
  int max_epochs = 35;    // paper: 15 (our scaled model needs more passes)
  float learning_rate = 3e-3f;
  float grad_clip = 10.0f;
  // Early stopping: stop after `patience` epochs without validation
  // improvement (paper uses early stopping on the validation set).
  int patience = 7;
  bool verbose = true;
  uint64_t seed = 99;
  // Compute threads for training, kernels and batch-parallel evaluation. 0
  // leaves the process-wide nn::Backend untouched; N >= 1 installs an
  // N-thread backend for the duration of the call (scoped: Fit/Evaluate
  // restore the previous backend on return; 1 = serial). Results are
  // bitwise identical for every value (see docs/parallelism.md).
  int num_threads = 0;
  // Data-parallel micro-sharding (docs/training-perf.md): each minibatch is
  // split into fixed shards of this many trips; shards run forward+backward
  // concurrently on the backend's workers — each with a deterministically
  // derived rng sub-stream and a private gradient sink — and are reduced in
  // ascending shard order, so trained parameters are bitwise identical for
  // every thread count. Shard graphs build inside recycling arenas, so the
  // epoch loop allocates nothing at steady state.
  //
  // Opt-in (0 = off, the single-graph tape per batch): sharding keeps every
  // thread count bitwise identical to every other, but it is a *different*
  // training trajectory than the unsharded one — latent draws come from
  // per-shard rng sub-streams and the traffic conv pipeline normalizes over
  // shard-local batch statistics — so it is not enabled behind anyone's
  // back. Enable together with num_threads for multi-core speedups
  // (16 pairs well with batch_size 64 on 4 cores).
  int micro_shard_size = 0;

  // --- Crash safety (docs/checkpointing.md) --------------------------------
  // Directory for the rotating latest/prev/best checkpoint files; empty
  // disables on-disk checkpointing (the in-memory divergence guard below
  // still runs).
  std::string checkpoint_dir;
  // Write a `latest` checkpoint every N completed epochs (plus always at the
  // end of training); <= 0 means every epoch.
  int checkpoint_every = 1;
  // Resume from the newest good checkpoint in checkpoint_dir; when none is
  // usable, trains from scratch. A resumed run continues the RNG stream,
  // optimizer moments, and early-stopping state, so it is bitwise identical
  // to an uninterrupted run with the same seed.
  bool resume = false;

  // --- Divergence guard ----------------------------------------------------
  // An epoch is diverged when its training loss is non-finite, any parameter
  // goes non-finite, or the loss jumps by more than
  // spike_factor * max(1, |previous epoch loss|). A diverged epoch is rolled
  // back to the last good state and retried with the learning rate scaled by
  // divergence_lr_backoff, at most divergence_max_retries times per run;
  // after that Fit restores the last good parameters and returns an error
  // status instead of corrupting the run.
  double divergence_spike_factor = 10.0;
  float divergence_lr_backoff = 0.5f;
  int divergence_max_retries = 3;
  // Test hook: maps (epoch, retries_used, observed loss) to the loss the
  // divergence guard sees. Used by tests to inject NaN; leave empty in
  // production.
  std::function<double(int, int, double)> divergence_loss_hook;

  // --- Graceful stop -------------------------------------------------------
  // Polled between minibatches. When it returns true, the partial epoch is
  // rolled back to the last epoch boundary (so the state on disk is exactly
  // what a crash-resume would continue from -- bitwise parity preserved), a
  // final `latest` checkpoint is flushed, and Fit returns with
  // TrainResult.interrupted set. `deepst train` wires this to the
  // SIGTERM/SIGINT flag (util/shutdown.h), sharing the serve daemon's
  // signal plumbing.
  std::function<bool()> stop_requested;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;      // mean per-trip loss
  double train_route_ce = 0.0;  // mean per-transition route CE
  double val_route_ce = 0.0;    // mean per-transition validation CE
  double seconds = 0.0;         // wall-clock for the epoch (incl. validation)
  int64_t transitions = 0;      // route transitions trained on this epoch
  // Training throughput: transitions / training wall-clock (the batch loop
  // only, excluding validation).
  double transitions_per_sec = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  int best_epoch = 0;
  // First epoch this Fit call actually executed (> 0 after a resume; the
  // earlier entries of `epochs` come from the checkpoint history).
  int start_epoch = 0;
  // Non-OK when training had to stop (e.g. the divergence retry budget was
  // exhausted). The model then holds the last good / best parameters, never
  // non-finite ones.
  util::Status status;
  // True when config.stop_requested ended the run early (a final checkpoint
  // was flushed; resume continues from the last completed epoch).
  bool interrupted = false;
};

// Minibatch SGD driver for DeepSTModel (Algorithm 1). Trips are bucketed by
// route length to limit padding waste (once, up front), and batch order is
// shuffled per epoch. After Fit returns, the model holds the parameters of
// the best-validation epoch (not the last epoch's).
class Trainer {
 public:
  Trainer(DeepSTModel* model, const TrainerConfig& config);
  ~Trainer();

  TrainResult Fit(const std::vector<const traj::TripRecord*>& train,
                  const std::vector<const traj::TripRecord*>& validation);

  // Mean per-transition route cross-entropy on a dataset (no grad).
  double EvaluateRouteCe(const std::vector<const traj::TripRecord*>& data);

  // Test/diagnostic hook: zeroes the model's gradients, then accumulates the
  // gradients of one batch — through the sharded engine when
  // config.micro_shard_size > 0, else through the legacy single-graph tape
  // with util::Rng(batch_seed). No optimizer step. Returns the batch's loss
  // stats.
  LossStats ComputeBatchGradients(const std::vector<const traj::Trip*>& batch,
                                  uint64_t batch_seed);

  // Steady-state allocation telemetry of the sharded engine, summed over its
  // shard slots (zero while no sharded batch ran yet). Counters that stay
  // flat across further batches/epochs mean the autodiff arenas reached the
  // zero-allocation steady state (docs/training-perf.md).
  struct ArenaCounters {
    int64_t buffer_misses = 0;
    int64_t node_growths = 0;
  };
  ArenaCounters arena_counters() const;

 private:
  class ShardEngine;
  ShardEngine* engine();  // lazily constructed sharded-training engine

  DeepSTModel* model_;
  TrainerConfig config_;
  std::unique_ptr<ShardEngine> engine_;
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_TRAINER_H_
