#include "core/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepst {
namespace core {
namespace {

constexpr uint32_t kCkptMagic = 0xDEE5C4B7;
// Version 2 added the per-epoch transitions / throughput fields to the
// history rows (EpochStats).
constexpr uint32_t kCkptVersion = 2;

// Bounds on the variable-length payload fields; a flipped byte in a count
// must fail cleanly, not drive an allocation (the CRC already catches these,
// but the parser must also stand alone -- see checkpoint_test.cc).
constexpr uint64_t kMaxHistory = uint64_t{1} << 24;
constexpr uint64_t kMaxSlots = uint64_t{1} << 20;
constexpr uint64_t kMaxKindLen = 64;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void WritePayload(std::ostream& out, const TrainingCheckpoint& ckpt) {
  WritePod(out, ckpt.next_epoch);
  WritePod(out, ckpt.best_epoch);
  WritePod(out, ckpt.best_val);
  WritePod(out, ckpt.since_best);
  WritePod(out, ckpt.retries_used);

  for (uint64_t s : ckpt.rng.s) WritePod(out, s);
  WritePod(out, ckpt.rng.has_cached_gaussian);
  WritePod(out, ckpt.rng.cached_gaussian);

  WritePod(out, static_cast<uint64_t>(ckpt.history.size()));
  for (const auto& e : ckpt.history) {
    WritePod(out, static_cast<int64_t>(e.epoch));
    WritePod(out, e.train_loss);
    WritePod(out, e.train_route_ce);
    WritePod(out, e.val_route_ce);
    WritePod(out, e.seconds);
    WritePod(out, e.transitions);
    WritePod(out, e.transitions_per_sec);
  }

  WritePod(out, static_cast<uint64_t>(ckpt.optimizer.kind.size()));
  out.write(ckpt.optimizer.kind.data(),
            static_cast<std::streamsize>(ckpt.optimizer.kind.size()));
  WritePod(out, ckpt.optimizer.step);
  WritePod(out, ckpt.optimizer.lr);
  WritePod(out, static_cast<uint64_t>(ckpt.optimizer.slots.size()));
  for (const auto& t : ckpt.optimizer.slots) {
    (void)nn::WriteTensor(out, t);
  }

  (void)nn::WriteNamedTensors(out, ckpt.params);
  (void)nn::WriteNamedTensors(out, ckpt.best_params);
  (void)nn::WriteNamedTensors(out, ckpt.buffers);
  (void)nn::WriteNamedTensors(out, ckpt.best_buffers);
}

util::Status ReadPayload(std::istream& in, TrainingCheckpoint* ckpt) {
  if (!ReadPod(in, &ckpt->next_epoch) || !ReadPod(in, &ckpt->best_epoch) ||
      !ReadPod(in, &ckpt->best_val) || !ReadPod(in, &ckpt->since_best) ||
      !ReadPod(in, &ckpt->retries_used)) {
    return util::Status::IoError("truncated checkpoint header");
  }
  if (ckpt->next_epoch < 0 || ckpt->best_epoch < 0 || ckpt->since_best < 0 ||
      ckpt->retries_used < 0) {
    return util::Status::IoError("corrupt checkpoint: negative counter");
  }
  for (auto& s : ckpt->rng.s) {
    if (!ReadPod(in, &s)) return util::Status::IoError("truncated rng state");
  }
  if (!ReadPod(in, &ckpt->rng.has_cached_gaussian) ||
      !ReadPod(in, &ckpt->rng.cached_gaussian)) {
    return util::Status::IoError("truncated rng state");
  }

  uint64_t history_count = 0;
  if (!ReadPod(in, &history_count)) {
    return util::Status::IoError("truncated history");
  }
  if (history_count > kMaxHistory) {
    return util::Status::IoError("corrupt checkpoint: history count");
  }
  ckpt->history.resize(history_count);
  for (auto& e : ckpt->history) {
    int64_t epoch = 0;
    if (!ReadPod(in, &epoch) || !ReadPod(in, &e.train_loss) ||
        !ReadPod(in, &e.train_route_ce) || !ReadPod(in, &e.val_route_ce) ||
        !ReadPod(in, &e.seconds) || !ReadPod(in, &e.transitions) ||
        !ReadPod(in, &e.transitions_per_sec)) {
      return util::Status::IoError("truncated history row");
    }
    e.epoch = static_cast<int>(epoch);
  }

  uint64_t kind_len = 0;
  if (!ReadPod(in, &kind_len)) {
    return util::Status::IoError("truncated optimizer state");
  }
  if (kind_len > kMaxKindLen) {
    return util::Status::IoError("corrupt checkpoint: optimizer kind length");
  }
  ckpt->optimizer.kind.assign(kind_len, '\0');
  in.read(ckpt->optimizer.kind.data(),
          static_cast<std::streamsize>(kind_len));
  uint64_t slot_count = 0;
  if (!in.good() || !ReadPod(in, &ckpt->optimizer.step) ||
      !ReadPod(in, &ckpt->optimizer.lr) || !ReadPod(in, &slot_count)) {
    return util::Status::IoError("truncated optimizer state");
  }
  if (slot_count > kMaxSlots) {
    return util::Status::IoError("corrupt checkpoint: optimizer slot count");
  }
  ckpt->optimizer.slots.resize(slot_count);
  for (auto& t : ckpt->optimizer.slots) {
    DEEPST_RETURN_IF_ERROR(nn::ReadTensor(in, &t));
  }

  auto params = nn::ReadNamedTensors(in);
  if (!params.ok()) return params.status();
  ckpt->params = std::move(params).value();
  auto best = nn::ReadNamedTensors(in);
  if (!best.ok()) return best.status();
  ckpt->best_params = std::move(best).value();
  auto buffers = nn::ReadNamedTensors(in);
  if (!buffers.ok()) return buffers.status();
  ckpt->buffers = std::move(buffers).value();
  auto best_buffers = nn::ReadNamedTensors(in);
  if (!best_buffers.ok()) return best_buffers.status();
  ckpt->best_buffers = std::move(best_buffers).value();
  return util::Status::Ok();
}

// Durable atomic file replace: stage to path.tmp, flush + fsync, rename over
// path, then fsync the parent directory so the rename itself survives a
// power cut. A crash at any point leaves either the old file or the new one
// under `path`, never a torn mix.
util::Status AtomicWriteFile(const std::string& path,
                             const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + tmp + ": " +
                                 std::strerror(errno));
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return util::Status::IoError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("rename " + tmp + " -> " + path + ": " +
                                 std::strerror(errno));
  }
  // Best-effort directory fsync; failure here does not un-write the file.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return util::Status::Ok();
}

// mkdir -p: creates each missing component of `dir`.
util::Status MakeDirs(const std::string& dir) {
  if (dir.empty()) return util::Status::InvalidArgument("empty directory");
  std::string prefix;
  std::istringstream parts(dir);
  std::string part;
  if (dir[0] == '/') prefix = "/";
  while (std::getline(parts, part, '/')) {
    if (part.empty()) continue;
    prefix += part;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return util::Status::IoError("mkdir " + prefix + ": " +
                                   std::strerror(errno));
    }
    prefix += "/";
  }
  return util::Status::Ok();
}

}  // namespace

util::Status SaveTrainingCheckpoint(const TrainingCheckpoint& ckpt,
                                    const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("checkpoint.save"));
  std::ostringstream buf(std::ios::binary);
  WritePod(buf, kCkptMagic);
  WritePod(buf, kCkptVersion);
  WritePayload(buf, ckpt);
  std::string bytes = std::move(buf).str();
  const uint32_t crc = util::Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return AtomicWriteFile(path, bytes);
}

util::StatusOr<TrainingCheckpoint> LoadTrainingCheckpoint(
    const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("checkpoint.load"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::NotFound("cannot open " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = std::move(raw).str();
  if (bytes.size() < 2 * sizeof(uint32_t) + sizeof(uint32_t)) {
    return util::Status::IoError("checkpoint too short: " + path);
  }
  const size_t body = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body, sizeof(stored_crc));
  const uint32_t crc = util::Crc32(bytes.data(), body);
  if (crc != stored_crc) {
    return util::Status::IoError("checkpoint CRC mismatch in " + path +
                                 " (corrupt or truncated)");
  }
  std::istringstream parse(bytes.substr(0, body), std::ios::binary);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(parse, &magic) || magic != kCkptMagic) {
    return util::Status::IoError("bad checkpoint magic in " + path);
  }
  if (!ReadPod(parse, &version) || version != kCkptVersion) {
    return util::Status::IoError("unsupported checkpoint version in " + path);
  }
  TrainingCheckpoint ckpt;
  util::Status s = ReadPayload(parse, &ckpt);
  if (!s.ok()) {
    return util::Status::IoError(s.message() + " in " + path);
  }
  return ckpt;
}

util::StatusOr<std::string> DescribeCheckpointFile(const std::string& path,
                                                   bool* healthy) {
  if (healthy != nullptr) *healthy = true;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::NotFound("cannot open " + path);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(in, &magic) || magic != kCkptMagic) {
    return util::Status::InvalidArgument("not a training checkpoint: " + path);
  }
  const bool have_version = ReadPod(in, &version);
  in.seekg(0, std::ios::end);
  const auto size = static_cast<unsigned long long>(in.tellg());
  std::string out = util::StrFormat(
      "training checkpoint  %s\n  format: v%u  size: %llu bytes\n",
      path.c_str(), have_version ? version : 0, size);
  // The CRC spans the whole payload, so validity is established by the
  // normal load path (which is what a resume would run anyway).
  auto loaded = LoadTrainingCheckpoint(path);
  if (!loaded.ok()) {
    if (healthy != nullptr) *healthy = false;
    out += util::StrFormat("  crc: %s\n", loaded.status().ToString().c_str());
    return out;
  }
  const TrainingCheckpoint& ckpt = loaded.value();
  int64_t num_params = 0;
  for (const auto& [name, tensor] : ckpt.params) num_params += tensor.numel();
  out += util::StrFormat(
      "  crc: ok\n  next epoch: %lld  best epoch: %lld  history: %zu\n"
      "  params: %zu tensors (%lld elements), best snapshot: %zu tensors\n",
      static_cast<long long>(ckpt.next_epoch),
      static_cast<long long>(ckpt.best_epoch), ckpt.history.size(),
      ckpt.params.size(), static_cast<long long>(num_params),
      ckpt.best_params.size());
  out += "  zero-copy: no (streaming format)\n";
  return out;
}

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {
  dir_status_ = MakeDirs(dir_);
  if (!dir_status_.ok()) {
    DEEPST_LOG(Warning) << "checkpoint dir unusable: "
                        << dir_status_.ToString();
  }
}

util::Status CheckpointManager::WriteLatest(const TrainingCheckpoint& ckpt) {
  DEEPST_RETURN_IF_ERROR(dir_status_);
  // Rotate the current latest out of the way first. If the process dies
  // between the rotation and the new write, `latest` is missing but `prev`
  // is intact and LoadLatestGood falls back to it.
  std::ifstream exists(LatestPath(), std::ios::binary);
  if (exists.is_open()) {
    exists.close();
    if (std::rename(LatestPath().c_str(), PrevPath().c_str()) != 0) {
      return util::Status::IoError("rotate " + LatestPath() + " -> " +
                                   PrevPath() + ": " + std::strerror(errno));
    }
  }
  return SaveTrainingCheckpoint(ckpt, LatestPath());
}

util::Status CheckpointManager::WriteBest(const TrainingCheckpoint& ckpt) {
  DEEPST_RETURN_IF_ERROR(dir_status_);
  return SaveTrainingCheckpoint(ckpt, BestPath());
}

util::StatusOr<TrainingCheckpoint> CheckpointManager::LoadLatestGood(
    std::string* loaded_path) const {
  auto latest = LoadTrainingCheckpoint(LatestPath());
  if (latest.ok()) {
    if (loaded_path != nullptr) *loaded_path = LatestPath();
    return latest;
  }
  if (latest.status().code() != util::Status::Code::kNotFound) {
    DEEPST_LOG(Warning) << "skipping bad checkpoint: "
                        << latest.status().ToString();
  }
  auto prev = LoadTrainingCheckpoint(PrevPath());
  if (prev.ok()) {
    if (loaded_path != nullptr) *loaded_path = PrevPath();
    return prev;
  }
  return util::Status::NotFound("no usable checkpoint in " + dir_ +
                                " (latest: " + latest.status().message() +
                                "; prev: " + prev.status().message() + ")");
}

}  // namespace core
}  // namespace deepst
