#include "core/infer/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {
namespace infer {

using roadnet::SegmentId;

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double InferenceSession::Hyp::Score() const {
  const size_t n = route.size() > 1 ? route.size() - 1 : 1;
  return log_prob / std::sqrt(static_cast<double>(n));
}

std::shared_ptr<const SharedInferWeights> SharedInferWeights::Build(
    const DeepSTModel& model) {
  auto w = std::make_shared<SharedInferWeights>();
  w->precision = model.config().infer_precision;
  const int64_t emb_dim = model.segment_embedding().dim();
  w->gru = nn::infer::GruStackView::Of(model.gru(), emb_dim, w->precision);
  const nn::Tensor& aw = model.alpha_layer().weight();
  w->alpha_w = nn::infer::PackedMatrix::Pack(aw.data(), aw.dim(0), aw.dim(1),
                                             aw.dim(1), w->precision);
  // The embedding table is gathered (one row copy per token), never
  // multiplied, so it stays exact double in every precision mode.
  const nn::Tensor& emb = model.segment_embedding().table()->value();
  w->emb_table_d.resize(static_cast<size_t>(emb.numel()));
  nn::infer::ToDouble(emb.data(), w->emb_table_d.data(), emb.numel());
  // K-major panel sidecars for the blocked GEMM path: batched (beam /
  // multi-query) GEMVs route through the register-blocked micro-kernels
  // whenever panels are present. Built once here, shared like the rest of
  // the packed weights; gemm_blocking=false reproduces the per-element
  // kernel schedule exactly (the A/B baseline in bench_micro).
  if (model.config().gemm_blocking) {
    w->alpha_w.BuildPanels();
    for (nn::infer::GruCellView& cell : w->gru.cells) {
      cell.w_ih.BuildPanels();
      cell.w_hh.BuildPanels();
    }
  }
  w->packed_weight_bytes = w->alpha_w.PackedBytes();
  w->packed_panel_bytes = w->alpha_w.PanelBytes();
  for (const nn::infer::GruCellView& cell : w->gru.cells) {
    w->packed_weight_bytes += cell.w_ih.PackedBytes() +
                              cell.w_hh.PackedBytes() +
                              cell.w_ih_ctx.size() * sizeof(double);
    w->packed_panel_bytes += cell.w_ih.PanelBytes() + cell.w_hh.PanelBytes();
  }
  return w;
}

InferenceSession::InferenceSession(const DeepSTModel* model)
    : model_(model),
      net_(model->network()),
      config_(model->config()),
      weights_shared_(model->shared_infer_weights()),
      gru_(weights_shared_->gru),
      emb_table_d_(weights_shared_->emb_table_d),
      alpha_w_(weights_shared_->alpha_w),
      alpha_b_(model->alpha_layer().bias()),
      emb_dim_(model->segment_embedding().dim()),
      nmax_(model->network().MaxOutDegree()),
      memo_(model->transition_memo()),
      arena_(kPerLayer + 3 * model->gru().num_layers()) {
  state_ptrs_.resize(static_cast<size_t>(gru_.num_layers()), nullptr);
  dstate_.resize(static_cast<size_t>(gru_.num_layers()));
  dgather_.resize(static_cast<size_t>(gru_.num_layers()));
  // Fixed-capacity hypothesis pools: one beam step produces at most
  // width carried-over hypotheses plus width expansions per active beam.
  const int width = std::max(config_.beam_width, 1);
  const size_t nseg = static_cast<size_t>(net_.num_segments());
  const size_t route_cap = static_cast<size_t>(config_.max_route_steps) + 2;
  beams_.resize(static_cast<size_t>(width));
  pool_.resize(static_cast<size_t>(width) * static_cast<size_t>(width + 1));
  for (Hyp& h : beams_) {
    h.route.reserve(route_cap);
    h.visited.resize(nseg, 0);
  }
  for (Hyp& h : pool_) {
    h.route.reserve(route_cap);
    h.visited.resize(nseg, 0);
  }
}

nn::infer::MemoKey InferenceSession::ContextKey(
    const PredictionContext& ctx) const {
  // Seed with the context-presence flags, then fold the exact bytes of
  // every context tensor that feeds the cached computation. The destination
  // *point* is deliberately not hashed: it only drives ShouldStop, which
  // runs outside the cached step.
  nn::infer::MemoKey k;
  k = nn::infer::MixKey(k, (ctx.has_dest ? 1u : 0u) |
                               (ctx.has_traffic ? 2u : 0u));
  if (ctx.has_dest) {
    k = nn::infer::HashBytesKey(
        ctx.dest_term.data(),
        static_cast<size_t>(ctx.dest_term.numel()) * sizeof(float), k);
    k = nn::infer::HashBytesKey(
        ctx.dest_repr.data(),
        static_cast<size_t>(ctx.dest_repr.numel()) * sizeof(float), k);
  }
  if (ctx.has_traffic) {
    k = nn::infer::HashBytesKey(
        ctx.traffic_term.data(),
        static_cast<size_t>(ctx.traffic_term.numel()) * sizeof(float), k);
    k = nn::infer::HashBytesKey(
        ctx.traffic_repr.data(),
        static_cast<size_t>(ctx.traffic_repr.numel()) * sizeof(float), k);
  }
  return k;
}

float* const* InferenceSession::HitStatePtrs(int64_t row) {
  const int64_t hd = gru_.hidden_dim;
  for (int l = 0; l < gru_.num_layers(); ++l) {
    state_ptrs_[static_cast<size_t>(l)] = HitSlot(l)->data() + row * hd;
  }
  return state_ptrs_.data();
}

float* const* InferenceSession::BatchStatePtrs(int64_t row) {
  const int64_t hd = gru_.hidden_dim;
  for (int l = 0; l < gru_.num_layers(); ++l) {
    state_ptrs_[static_cast<size_t>(l)] = StateSlot(l)->data() + row * hd;
  }
  return state_ptrs_.data();
}

void InferenceSession::PrepareContext(const PredictionContext& ctx) {
  const int64_t dest_dim = ctx.has_dest ? ctx.dest_repr.dim(1) : 0;
  const int64_t traffic_dim = ctx.has_traffic ? ctx.traffic_repr.dim(1) : 0;
  const int64_t ctx_dim = dest_dim + traffic_dim;
  const nn::infer::GruCellView& cell0 = gru_.cells[0];
  DEEPST_CHECK_EQ(emb_dim_ + ctx_dim, cell0.input_dim);
  ctxd_.resize(static_cast<size_t>(ctx_dim));
  if (dest_dim > 0) {
    nn::infer::ToDouble(ctx.dest_repr.data(), ctxd_.data(), dest_dim);
  }
  if (traffic_dim > 0) {
    nn::infer::ToDouble(ctx.traffic_repr.data(), ctxd_.data() + dest_dim,
                        traffic_dim);
  }
  // Layer-0 split input: fold the context's input-to-hidden product and
  // b_ih into one per-query bias; steps then only multiply the embedding
  // columns of w_ih. The context columns are exact doubles in every
  // precision mode (w_ih_ctx), so this fold never carries quantization
  // error into all downstream steps.
  const int64_t h3 = 3 * cell0.hidden_dim;
  nn::Tensor* ctx_ih = arena_.Acquire(kCtxIh, {1, h3});
  nn::infer::LinearForward(ctxd_.data(), ctx_dim, cell0.w_ih_ctx.data(),
                           ctx_dim, cell0.b_ih->data(), nullptr,
                           ctx_ih->data(), 1, ctx_dim, h3);
  // Queries pin the memo epoch they start with (see TransitionMemoCache).
  if (memo_ != nullptr) {
    memo_epoch_ = memo_->current_epoch();
    ctx_key_ = ContextKey(ctx);
  }
  // alpha bias + additive context logit terms, one row.
  nn::Tensor* lb = arena_.Acquire(kLogitBias, {1, nmax_});
  const float* ab = alpha_b_ != nullptr ? alpha_b_->data() : nullptr;
  const float* dt = ctx.has_dest ? ctx.dest_term.data() : nullptr;
  const float* tt = ctx.has_traffic ? ctx.traffic_term.data() : nullptr;
  float* lbp = lb->data();
  for (int64_t j = 0; j < nmax_; ++j) {
    float v = ab != nullptr ? ab[j] : 0.0f;
    if (dt != nullptr) v += dt[j];
    if (tt != nullptr) v += tt[j];
    lbp[j] = v;
  }
}

void InferenceSession::PrepareContexts(
    const std::vector<const PredictionContext*>& ctxs) {
  const int64_t q_count = static_cast<int64_t>(ctxs.size());
  const nn::infer::GruCellView& cell0 = gru_.cells[0];
  const int64_t h3 = 3 * cell0.hidden_dim;
  nn::Tensor* ctx_ih = arena_.Acquire(kCtxIh, {q_count, h3});
  nn::Tensor* lb = arena_.Acquire(kLogitBias, {q_count, nmax_});
  const float* ab = alpha_b_ != nullptr ? alpha_b_->data() : nullptr;
  if (memo_ != nullptr) {
    // One pinned epoch for the whole coalesced batch; per-query context
    // signatures (a query's keys must match its single-query counterpart's
    // exactly — bitwise-parity across batch compositions includes the memo).
    memo_epoch_ = memo_->current_epoch();
    ctx_keys_.resize(static_cast<size_t>(q_count));
    for (int64_t q = 0; q < q_count; ++q) {
      ctx_keys_[static_cast<size_t>(q)] =
          ContextKey(*ctxs[static_cast<size_t>(q)]);
    }
  }
  for (int64_t q = 0; q < q_count; ++q) {
    const PredictionContext& ctx = *ctxs[static_cast<size_t>(q)];
    const int64_t dest_dim = ctx.has_dest ? ctx.dest_repr.dim(1) : 0;
    const int64_t traffic_dim = ctx.has_traffic ? ctx.traffic_repr.dim(1) : 0;
    const int64_t ctx_dim = dest_dim + traffic_dim;
    DEEPST_CHECK_EQ(emb_dim_ + ctx_dim, cell0.input_dim);
    ctxd_.resize(static_cast<size_t>(ctx_dim));
    if (dest_dim > 0) {
      nn::infer::ToDouble(ctx.dest_repr.data(), ctxd_.data(), dest_dim);
    }
    if (traffic_dim > 0) {
      nn::infer::ToDouble(ctx.traffic_repr.data(), ctxd_.data() + dest_dim,
                          traffic_dim);
    }
    // One LinearForward call per row, same operands as PrepareContext, so
    // each row of the [Q, 3H] block is bitwise identical to preparing that
    // context alone.
    nn::infer::LinearForward(ctxd_.data(), ctx_dim, cell0.w_ih_ctx.data(),
                             ctx_dim, cell0.b_ih->data(), nullptr,
                             ctx_ih->data() + q * h3, 1, ctx_dim, h3);
    const float* dt = ctx.has_dest ? ctx.dest_term.data() : nullptr;
    const float* tt = ctx.has_traffic ? ctx.traffic_term.data() : nullptr;
    float* lbp = lb->data() + q * nmax_;
    for (int64_t j = 0; j < nmax_; ++j) {
      float v = ab != nullptr ? ab[j] : 0.0f;
      if (dt != nullptr) v += dt[j];
      if (tt != nullptr) v += tt[j];
      lbp[j] = v;
    }
  }
}

void InferenceSession::EnsureStepScratch(int64_t batch) {
  const size_t emb_need = static_cast<size_t>(batch * emb_dim_);
  if (embd_.size() < emb_need) {
    embd_.resize(emb_need);
    ++scratch_grow_count_;
  }
  const size_t st_need = static_cast<size_t>(batch * gru_.hidden_dim);
  for (std::vector<double>& d : dstate_) {
    if (d.size() < st_need) {
      d.resize(st_need);
      ++scratch_grow_count_;
    }
  }
}

void InferenceSession::EnsureGatherScratch(int64_t rows) {
  const size_t need = static_cast<size_t>(rows * gru_.hidden_dim);
  for (std::vector<double>& d : dgather_) {
    if (d.size() < need) {
      d.resize(need);
      ++scratch_grow_count_;
    }
  }
}

void InferenceSession::ResetState(int64_t batch) {
  EnsureStepScratch(batch);
  const size_t n = static_cast<size_t>(batch * gru_.hidden_dim);
  for (int l = 0; l < gru_.num_layers(); ++l) {
    arena_.Acquire(StateSlotIndex(l), {batch, gru_.hidden_dim})->Fill(0.0f);
    std::fill_n(dstate_[static_cast<size_t>(l)].data(), n, 0.0);
  }
}

void InferenceSession::StepBatch(const int* tokens, int64_t batch,
                                 bool want_logits) {
  // Invariant: on entry dstate_[l] holds the double image of StateSlot(l)
  // for every active row (ResetState zeroes both; the beam gather and memo
  // paths refresh it). Each layer's GEMVs then read the mirror directly and
  // the mirror is re-converted once after GruGates — one ToDouble per layer
  // per step instead of one per GEMV operand.
  const nn::infer::GruCellView& cell0 = gru_.cells[0];
  const int64_t hd = gru_.hidden_dim;
  const int64_t h3 = 3 * hd;
  DEEPST_DCHECK(embd_.size() >= static_cast<size_t>(batch * emb_dim_));
  for (int64_t b = 0; b < batch; ++b) {
    std::copy_n(
        emb_table_d_.data() + static_cast<int64_t>(tokens[b]) * emb_dim_,
        emb_dim_, embd_.data() + b * emb_dim_);
  }
  nn::Tensor* gi = arena_.Acquire(kGi, {batch, h3});
  nn::Tensor* gh = arena_.Acquire(kGh, {batch, h3});
  nn::Tensor* h0 = StateSlot(0);
  nn::infer::GemvForward(embd_.data(), emb_dim_, cell0.w_ih,
                         arena_.Get(kCtxIh)->data(), nullptr, gi->data(),
                         batch, h3);
  nn::infer::GemvForward(dstate_[0].data(), hd, cell0.w_hh,
                         cell0.b_hh->data(), nullptr, gh->data(), batch, h3);
  nn::infer::GruGates(*gi, *gh, *h0, h0);
  nn::infer::ToDouble(h0->data(), dstate_[0].data(), batch * hd);
  for (int l = 1; l < gru_.num_layers(); ++l) {
    const nn::infer::GruCellView& cell = gru_.cells[static_cast<size_t>(l)];
    nn::Tensor* h = StateSlot(l);
    nn::infer::GemvForward(dstate_[static_cast<size_t>(l - 1)].data(), hd,
                           cell.w_ih, cell.b_ih->data(), nullptr, gi->data(),
                           batch, h3);
    nn::infer::GemvForward(dstate_[static_cast<size_t>(l)].data(), hd,
                           cell.w_hh, cell.b_hh->data(), nullptr, gh->data(),
                           batch, h3);
    nn::infer::GruGates(*gi, *gh, *h, h);
    nn::infer::ToDouble(h->data(), dstate_[static_cast<size_t>(l)].data(),
                        batch * hd);
  }
  if (want_logits) {
    nn::Tensor* logits = arena_.Acquire(kLogits, {batch, nmax_});
    nn::infer::GemvForward(
        dstate_[static_cast<size_t>(gru_.num_layers() - 1)].data(), hd,
        alpha_w_, arena_.Get(kLogitBias)->data(), nullptr, logits->data(),
        batch, nmax_);
  }
}

void InferenceSession::StepBatchMulti(const int* tokens, const int* row_ctx,
                                      int64_t batch, bool want_logits) {
  // Mirrors StepBatch; only the layer-0 input bias and the logit bias are
  // row-mapped into the [Q, .] blocks PrepareContexts filled. Every other
  // operand is query-independent, so each row's arithmetic is exactly the
  // single-context step's.
  const nn::infer::GruCellView& cell0 = gru_.cells[0];
  const int64_t hd = gru_.hidden_dim;
  const int64_t h3 = 3 * hd;
  DEEPST_DCHECK(embd_.size() >= static_cast<size_t>(batch * emb_dim_));
  for (int64_t b = 0; b < batch; ++b) {
    std::copy_n(
        emb_table_d_.data() + static_cast<int64_t>(tokens[b]) * emb_dim_,
        emb_dim_, embd_.data() + b * emb_dim_);
  }
  nn::Tensor* gi = arena_.Acquire(kGi, {batch, h3});
  nn::Tensor* gh = arena_.Acquire(kGh, {batch, h3});
  nn::Tensor* h0 = StateSlot(0);
  nn::infer::GemvForwardRowBias(embd_.data(), emb_dim_, cell0.w_ih,
                                arena_.Get(kCtxIh)->data(), nullptr, row_ctx,
                                gi->data(), batch, h3);
  nn::infer::GemvForward(dstate_[0].data(), hd, cell0.w_hh,
                         cell0.b_hh->data(), nullptr, gh->data(), batch, h3);
  nn::infer::GruGates(*gi, *gh, *h0, h0);
  nn::infer::ToDouble(h0->data(), dstate_[0].data(), batch * hd);
  for (int l = 1; l < gru_.num_layers(); ++l) {
    const nn::infer::GruCellView& cell = gru_.cells[static_cast<size_t>(l)];
    nn::Tensor* h = StateSlot(l);
    nn::infer::GemvForward(dstate_[static_cast<size_t>(l - 1)].data(), hd,
                           cell.w_ih, cell.b_ih->data(), nullptr, gi->data(),
                           batch, h3);
    nn::infer::GemvForward(dstate_[static_cast<size_t>(l)].data(), hd,
                           cell.w_hh, cell.b_hh->data(), nullptr, gh->data(),
                           batch, h3);
    nn::infer::GruGates(*gi, *gh, *h, h);
    nn::infer::ToDouble(h->data(), dstate_[static_cast<size_t>(l)].data(),
                        batch * hd);
  }
  if (want_logits) {
    nn::Tensor* logits = arena_.Acquire(kLogits, {batch, nmax_});
    nn::infer::GemvForwardRowBias(
        dstate_[static_cast<size_t>(gru_.num_layers() - 1)].data(), hd,
        alpha_w_, arena_.Get(kLogitBias)->data(), nullptr, row_ctx,
        logits->data(), batch, nmax_);
  }
}

traj::Route InferenceSession::PredictRoute(const PredictionContext& ctx,
                                           SegmentId origin, util::Rng* rng) {
  DEEPST_CHECK(origin >= 0 && origin < net_.num_segments());
  if (config_.map_prediction && config_.beam_width > 1) {
    return PredictRouteBeam(ctx, origin, rng);
  }
  PrepareContext(ctx);
  ResetState(1);
  traj::Route route;
  route.reserve(static_cast<size_t>(config_.max_route_steps) + 2);
  route.push_back(origin);
  visited_.assign(static_cast<size_t>(net_.num_segments()), 0);
  visited_[static_cast<size_t>(origin)] = 1;
  SegmentId cur = origin;
  // Memo key chain: ctx signature mixed with every token fed so far. A hit
  // replays the cached logits and post-step state bitwise, so the rest of
  // the loop (and the rng stream in sampling mode) is oblivious to it.
  nn::infer::MemoKey key = ctx_key_;
  for (int step = 0; step < config_.max_route_steps; ++step) {
    const auto& outs = net_.OutSegments(cur);
    if (outs.empty()) break;
    const int token = static_cast<int>(cur);
    if (memo_ != nullptr) {
      key = nn::infer::MixKey(key, static_cast<uint64_t>(token));
      nn::Tensor* lt = arena_.Acquire(kLogits, {1, nmax_});
      if (!memo_->Lookup(key, memo_epoch_, lt->data(), BatchStatePtrs(0))) {
        StepBatch(&token, 1, /*want_logits=*/true);
        memo_->Insert(key, memo_epoch_, arena_.Get(kLogits)->data(),
                      BatchStatePtrs(0));
      } else {
        // The hit replayed float state directly into the state slots, so
        // the double mirrors are stale; re-convert the one live row.
        for (int l = 0; l < gru_.num_layers(); ++l) {
          nn::infer::ToDouble(StateSlot(l)->data(),
                              dstate_[static_cast<size_t>(l)].data(),
                              gru_.hidden_dim);
        }
      }
    } else {
      StepBatch(&token, 1, /*want_logits=*/true);
    }
    const float* lv = arena_.Get(kLogits)->data();
    int best = -1;
    if (config_.map_prediction) {
      for (int s = 0; s < static_cast<int>(outs.size()); ++s) {
        if (visited_[static_cast<size_t>(outs[static_cast<size_t>(s)])]) {
          continue;
        }
        if (best < 0 || lv[s] > lv[best]) best = s;
      }
    } else {
      weights_.assign(outs.size(), 0.0);
      double mx = -1e30;
      bool any = false;
      for (size_t s = 0; s < outs.size(); ++s) {
        if (visited_[static_cast<size_t>(outs[s])]) continue;
        mx = std::max(mx, static_cast<double>(lv[s]));
        any = true;
      }
      if (any) {
        for (size_t s = 0; s < outs.size(); ++s) {
          if (visited_[static_cast<size_t>(outs[s])]) continue;
          weights_[s] = std::exp(lv[s] - mx);
        }
        best = rng->Categorical(weights_);
      }
    }
    if (best < 0) break;  // boxed in by visited segments
    const SegmentId next = outs[static_cast<size_t>(best)];
    route.push_back(next);
    visited_[static_cast<size_t>(next)] = 1;
    if (ShouldStop(net_, ctx.destination, next, config_, rng)) break;
    cur = next;
  }
  return route;
}

void InferenceSession::CopyHyp(const Hyp& src, Hyp* dst) {
  dst->route.assign(src.route.begin(), src.route.end());
  dst->visited.assign(src.visited.begin(), src.visited.end());
  dst->log_prob = src.log_prob;
  dst->done = src.done;
  dst->src_row = src.src_row;
  dst->hit_src = src.hit_src;
  dst->key = src.key;
}

traj::Route InferenceSession::PredictRouteBeam(const PredictionContext& ctx,
                                               SegmentId origin,
                                               util::Rng* rng,
                                               double deadline_ms,
                                               bool* budget_hit) {
  if (budget_hit != nullptr) *budget_hit = false;
  util::Stopwatch deadline_sw;
  const int width = std::max(config_.beam_width, 1);
  const int64_t hd = gru_.hidden_dim;
  PrepareContext(ctx);
  Hyp& root = beams_[0];
  root.route.clear();
  root.route.push_back(origin);
  std::fill(root.visited.begin(), root.visited.end(), 0);
  root.visited[static_cast<size_t>(origin)] = 1;
  root.log_prob = 0.0;
  root.done = false;
  root.src_row = -1;
  root.hit_src = -1;
  root.key = ctx_key_;
  EnsureStepScratch(width);
  EnsureGatherScratch(width);
  for (int l = 0; l < gru_.num_layers(); ++l) {
    arena_.Acquire(GatherSlotIndex(l), {1, hd})->Fill(0.0f);
    std::fill_n(dgather_[static_cast<size_t>(l)].data(),
                static_cast<size_t>(hd), 0.0);
  }
  if (memo_ != nullptr) {
    // Hit staging at full width, once per call: a probe that hits writes the
    // cached logits/state into row i (its beam index) and skips the step.
    arena_.Acquire(kHitLogits, {width, nmax_});
    for (int l = 0; l < gru_.num_layers(); ++l) {
      arena_.Acquire(HitSlotIndex(l), {width, hd});
    }
  }
  int num_beams = 1;

  for (int step = 0; step < config_.max_route_steps; ++step) {
    // Pass 1: probe the memo per expandable hypothesis, then one batched GRU
    // step over the misses (row-local kernels make this bitwise identical to
    // stepping each hypothesis alone).
    tokens_.clear();
    active_row_.assign(static_cast<size_t>(num_beams), -1);
    hit_row_.assign(static_cast<size_t>(num_beams), -1);
    bool any_hit = false;
    for (int i = 0; i < num_beams; ++i) {
      const Hyp& b = beams_[static_cast<size_t>(i)];
      if (b.done) continue;
      if (net_.OutSegments(b.route.back()).empty()) continue;
      if (memo_ != nullptr) {
        const nn::infer::MemoKey sk = nn::infer::MixKey(
            b.key, static_cast<uint64_t>(b.route.back()));
        if (memo_->Lookup(sk, memo_epoch_,
                          arena_.Get(kHitLogits)->data() +
                              static_cast<int64_t>(i) * nmax_,
                          HitStatePtrs(i))) {
          hit_row_[static_cast<size_t>(i)] = i;
          any_hit = true;
          continue;
        }
      }
      active_row_[static_cast<size_t>(i)] = static_cast<int>(tokens_.size());
      tokens_.push_back(static_cast<int>(b.route.back()));
    }
    const int64_t active = static_cast<int64_t>(tokens_.size());
    const bool any_expand = active > 0 || any_hit;
    if (active > 0) {
      for (int l = 0; l < gru_.num_layers(); ++l) {
        nn::Tensor* st = arena_.Acquire(StateSlotIndex(l), {active, hd});
        const nn::Tensor* bs = GatherSlot(l);
        const double* bd = dgather_[static_cast<size_t>(l)].data();
        double* sd = dstate_[static_cast<size_t>(l)].data();
        for (int i = 0; i < num_beams; ++i) {
          const int a = active_row_[static_cast<size_t>(i)];
          if (a < 0) continue;
          std::copy_n(bs->data() + static_cast<int64_t>(i) * hd, hd,
                      st->data() + static_cast<int64_t>(a) * hd);
          std::copy_n(bd + static_cast<int64_t>(i) * hd, hd,
                      sd + static_cast<int64_t>(a) * hd);
        }
      }
      StepBatch(tokens_.data(), active, /*want_logits=*/true);
      if (memo_ != nullptr) {
        for (int i = 0; i < num_beams; ++i) {
          const int a = active_row_[static_cast<size_t>(i)];
          if (a < 0) continue;
          const Hyp& b = beams_[static_cast<size_t>(i)];
          memo_->Insert(
              nn::infer::MixKey(b.key,
                                static_cast<uint64_t>(b.route.back())),
              memo_epoch_,
              arena_.Get(kLogits)->data() + static_cast<int64_t>(a) * nmax_,
              BatchStatePtrs(a));
        }
      }
    }
    const float* logits = active > 0 ? arena_.Get(kLogits)->data() : nullptr;
    const float* hit_logits =
        memo_ != nullptr ? arena_.Get(kHitLogits)->data() : nullptr;

    // Pass 2: expand in beam order (so the ShouldStop rng call order matches
    // the reference exactly).
    pool_size_ = 0;
    for (int i = 0; i < num_beams; ++i) {
      Hyp& beam = beams_[static_cast<size_t>(i)];
      if (beam.done) {
        beam.src_row = -1;
        beam.hit_src = -1;
        CopyHyp(beam, &pool_[pool_size_++]);
        continue;
      }
      const SegmentId cur = beam.route.back();
      const auto& outs = net_.OutSegments(cur);
      if (outs.empty()) {
        beam.done = true;
        beam.src_row = -1;
        beam.hit_src = -1;
        CopyHyp(beam, &pool_[pool_size_++]);
        continue;
      }
      const int a = active_row_[static_cast<size_t>(i)];
      const int hr = hit_row_[static_cast<size_t>(i)];
      const float* lrow = hr >= 0
                              ? hit_logits + static_cast<int64_t>(hr) * nmax_
                              : logits + static_cast<int64_t>(a) * nmax_;
      const int deg = static_cast<int>(outs.size());
      ranked_.clear();
      for (int s = 0; s < deg; ++s) {
        if (beam.visited[static_cast<size_t>(outs[static_cast<size_t>(s)])]) {
          continue;
        }
        ranked_.emplace_back(ValidSlotLogProb(lrow, deg, s), s);
      }
      if (ranked_.empty()) {  // boxed in: terminate this hypothesis
        beam.done = true;
        beam.src_row = -1;
        beam.hit_src = -1;
        CopyHyp(beam, &pool_[pool_size_++]);
        continue;
      }
      std::sort(ranked_.rbegin(), ranked_.rend());
      const int expand =
          std::min<int>(width, static_cast<int>(ranked_.size()));
      for (int e = 0; e < expand; ++e) {
        Hyp& nxt = pool_[pool_size_++];
        CopyHyp(beam, &nxt);
        nxt.src_row = a;
        nxt.hit_src = hr;
        if (memo_ != nullptr) {
          nxt.key = nn::infer::MixKey(beam.key, static_cast<uint64_t>(cur));
        }
        nxt.log_prob += ranked_[static_cast<size_t>(e)].first;
        const SegmentId seg =
            outs[static_cast<size_t>(ranked_[static_cast<size_t>(e)].second)];
        nxt.route.push_back(seg);
        nxt.visited[static_cast<size_t>(seg)] = 1;
        nxt.done = ShouldStop(net_, ctx.destination, seg, config_, rng);
      }
    }

    // Keep the best `width` hypotheses by normalized score; gather the
    // survivors' stepped states back into the per-beam state rows.
    pool_order_.resize(pool_size_);
    std::iota(pool_order_.begin(), pool_order_.end(), 0);
    std::sort(pool_order_.begin(), pool_order_.end(), [this](int x, int y) {
      return pool_[static_cast<size_t>(x)].Score() >
             pool_[static_cast<size_t>(y)].Score();
    });
    const int keep = std::min<int>(width, static_cast<int>(pool_size_));
    for (int l = 0; l < gru_.num_layers(); ++l) {
      arena_.Acquire(GatherSlotIndex(l), {keep, hd});
    }
    for (int w = 0; w < keep; ++w) {
      const Hyp& src = pool_[static_cast<size_t>(pool_order_[w])];
      CopyHyp(src, &beams_[static_cast<size_t>(w)]);
      if (src.src_row >= 0) {
        // Stepped row: the double mirror already holds its exact image, so
        // a double->double copy carries the same values ToDouble would.
        for (int l = 0; l < gru_.num_layers(); ++l) {
          std::copy_n(StateSlot(l)->data() +
                          static_cast<int64_t>(src.src_row) * hd,
                      hd,
                      GatherSlot(l)->data() + static_cast<int64_t>(w) * hd);
          std::copy_n(dstate_[static_cast<size_t>(l)].data() +
                          static_cast<int64_t>(src.src_row) * hd,
                      hd,
                      dgather_[static_cast<size_t>(l)].data() +
                          static_cast<int64_t>(w) * hd);
        }
      } else if (src.hit_src >= 0) {
        // Memo-hit row: only float state exists; convert it for the mirror.
        for (int l = 0; l < gru_.num_layers(); ++l) {
          const float* hs = HitSlot(l)->data() +
                            static_cast<int64_t>(src.hit_src) * hd;
          std::copy_n(hs, hd,
                      GatherSlot(l)->data() + static_cast<int64_t>(w) * hd);
          nn::infer::ToDouble(hs,
                              dgather_[static_cast<size_t>(l)].data() +
                                  static_cast<int64_t>(w) * hd,
                              hd);
        }
      }
    }
    num_beams = keep;
    if (!any_expand) break;
    bool all_done = true;
    for (int i = 0; i < num_beams; ++i) {
      if (!beams_[static_cast<size_t>(i)].done) all_done = false;
    }
    if (all_done) break;
    // Deadline budget: checked only between completed expansion steps (same
    // rule as the reference path), so at least one step always runs and the
    // result is the best full hypothesis so far.
    if (deadline_ms > 0.0 && deadline_sw.ElapsedMillis() >= deadline_ms) {
      if (budget_hit != nullptr) *budget_hit = true;
      break;
    }
  }

  // Prefer completed hypotheses.
  const Hyp* best = nullptr;
  for (int i = 0; i < num_beams; ++i) {
    const Hyp& b = beams_[static_cast<size_t>(i)];
    if (!b.done) continue;
    if (best == nullptr || b.Score() > best->Score()) best = &b;
  }
  if (best == nullptr) {
    for (int i = 0; i < num_beams; ++i) {
      const Hyp& b = beams_[static_cast<size_t>(i)];
      if (best == nullptr || b.Score() > best->Score()) best = &b;
    }
  }
  DEEPST_CHECK(best != nullptr);
  return best->route;
}

void InferenceSession::EnsureQueryBeams(size_t count) {
  if (query_beams_.size() >= count) return;
  const int width = std::max(config_.beam_width, 1);
  const size_t nseg = static_cast<size_t>(net_.num_segments());
  const size_t route_cap = static_cast<size_t>(config_.max_route_steps) + 2;
  const size_t old = query_beams_.size();
  query_beams_.resize(count);
  for (size_t q = old; q < count; ++q) {
    QueryBeam& qb = query_beams_[q];
    qb.beams.resize(static_cast<size_t>(width));
    qb.pool.resize(static_cast<size_t>(width) * static_cast<size_t>(width + 1));
    for (Hyp& h : qb.beams) {
      h.route.reserve(route_cap);
      h.visited.resize(nseg, 0);
    }
    for (Hyp& h : qb.pool) {
      h.route.reserve(route_cap);
      h.visited.resize(nseg, 0);
    }
  }
}

void InferenceSession::FinalizeQuery(const QueryBeam& qb, PredictItem* item) {
  const Hyp* best = nullptr;
  for (int i = 0; i < qb.num_beams; ++i) {
    const Hyp& b = qb.beams[static_cast<size_t>(i)];
    if (!b.done) continue;
    if (best == nullptr || b.Score() > best->Score()) best = &b;
  }
  if (best == nullptr) {
    for (int i = 0; i < qb.num_beams; ++i) {
      const Hyp& b = qb.beams[static_cast<size_t>(i)];
      if (best == nullptr || b.Score() > best->Score()) best = &b;
    }
  }
  DEEPST_CHECK(best != nullptr);
  item->route = best->route;
}

void InferenceSession::PredictRoutesBeamMulti(
    std::vector<PredictItem>* items) {
  // Lock-step beam search needs the deterministic MAP config: ShouldStop
  // then draws nothing, so interleaving queries cannot shift any rng stream.
  DEEPST_CHECK(config_.map_prediction && !config_.sample_stop);
  const int64_t q_count = static_cast<int64_t>(items->size());
  if (q_count == 0) return;
  const int width = std::max(config_.beam_width, 1);
  const int64_t hd = gru_.hidden_dim;

  ctx_ptrs_.clear();
  for (PredictItem& item : *items) {
    DEEPST_CHECK(item.origin >= 0 && item.origin < net_.num_segments());
    item.budget_hit = false;
    ctx_ptrs_.push_back(item.ctx);
  }
  PrepareContexts(ctx_ptrs_);
  EnsureQueryBeams(static_cast<size_t>(q_count));
  EnsureStepScratch(q_count * width);
  EnsureGatherScratch(q_count * width);
  for (int l = 0; l < gru_.num_layers(); ++l) {
    arena_.Acquire(GatherSlotIndex(l), {q_count * width, hd})->Fill(0.0f);
    std::fill_n(dgather_[static_cast<size_t>(l)].data(),
                static_cast<size_t>(q_count * width * hd), 0.0);
  }
  if (memo_ != nullptr) {
    // Hit staging row for (query q, beam i) is q*width + i.
    arena_.Acquire(kHitLogits, {q_count * width, nmax_});
    for (int l = 0; l < gru_.num_layers(); ++l) {
      arena_.Acquire(HitSlotIndex(l), {q_count * width, hd});
    }
  }
  for (int64_t q = 0; q < q_count; ++q) {
    QueryBeam& qb = query_beams_[static_cast<size_t>(q)];
    const SegmentId origin = (*items)[static_cast<size_t>(q)].origin;
    Hyp& root = qb.beams[0];
    root.route.clear();
    root.route.push_back(origin);
    std::fill(root.visited.begin(), root.visited.end(), 0);
    root.visited[static_cast<size_t>(origin)] = 1;
    root.log_prob = 0.0;
    root.done = false;
    root.src_row = -1;
    root.hit_src = -1;
    if (memo_ != nullptr) root.key = ctx_keys_[static_cast<size_t>(q)];
    qb.num_beams = 1;
    qb.finished = false;
    qb.watch.Reset();
  }

  int64_t live = q_count;
  for (int step = 0; step < config_.max_route_steps && live > 0; ++step) {
    // Pass 1: one padded GRU step over every expandable hypothesis of every
    // live query; row_ctx_ routes each row to its query's context biases.
    tokens_.clear();
    row_ctx_.clear();
    for (int64_t q = 0; q < q_count; ++q) {
      QueryBeam& qb = query_beams_[static_cast<size_t>(q)];
      if (qb.finished) continue;
      qb.active_row.assign(static_cast<size_t>(qb.num_beams), -1);
      qb.hit_row.assign(static_cast<size_t>(qb.num_beams), -1);
      for (int i = 0; i < qb.num_beams; ++i) {
        const Hyp& b = qb.beams[static_cast<size_t>(i)];
        if (b.done) continue;
        if (net_.OutSegments(b.route.back()).empty()) continue;
        if (memo_ != nullptr) {
          const nn::infer::MemoKey sk = nn::infer::MixKey(
              b.key, static_cast<uint64_t>(b.route.back()));
          const int64_t hr = q * width + i;
          if (memo_->Lookup(sk, memo_epoch_,
                            arena_.Get(kHitLogits)->data() + hr * nmax_,
                            HitStatePtrs(hr))) {
            qb.hit_row[static_cast<size_t>(i)] = static_cast<int>(hr);
            continue;
          }
        }
        qb.active_row[static_cast<size_t>(i)] =
            static_cast<int>(tokens_.size());
        tokens_.push_back(static_cast<int>(b.route.back()));
        row_ctx_.push_back(static_cast<int>(q));
      }
    }
    const int64_t active = static_cast<int64_t>(tokens_.size());
    if (active > 0) {
      for (int l = 0; l < gru_.num_layers(); ++l) {
        nn::Tensor* st = arena_.Acquire(StateSlotIndex(l), {active, hd});
        const nn::Tensor* bs = GatherSlot(l);
        const double* bd = dgather_[static_cast<size_t>(l)].data();
        double* sd = dstate_[static_cast<size_t>(l)].data();
        for (int64_t q = 0; q < q_count; ++q) {
          const QueryBeam& qb = query_beams_[static_cast<size_t>(q)];
          if (qb.finished) continue;
          for (int i = 0; i < qb.num_beams; ++i) {
            const int a = qb.active_row[static_cast<size_t>(i)];
            if (a < 0) continue;
            std::copy_n(bs->data() + (q * width + i) * hd, hd,
                        st->data() + static_cast<int64_t>(a) * hd);
            std::copy_n(bd + (q * width + i) * hd, hd,
                        sd + static_cast<int64_t>(a) * hd);
          }
        }
      }
      StepBatchMulti(tokens_.data(), row_ctx_.data(), active,
                     /*want_logits=*/true);
      if (memo_ != nullptr) {
        for (int64_t q = 0; q < q_count; ++q) {
          const QueryBeam& qb = query_beams_[static_cast<size_t>(q)];
          if (qb.finished) continue;
          for (int i = 0; i < qb.num_beams; ++i) {
            const int a = qb.active_row[static_cast<size_t>(i)];
            if (a < 0) continue;
            const Hyp& b = qb.beams[static_cast<size_t>(i)];
            memo_->Insert(
                nn::infer::MixKey(b.key,
                                  static_cast<uint64_t>(b.route.back())),
                memo_epoch_,
                arena_.Get(kLogits)->data() + static_cast<int64_t>(a) * nmax_,
                BatchStatePtrs(a));
          }
        }
      }
    }
    const float* logits = active > 0 ? arena_.Get(kLogits)->data() : nullptr;
    const float* hit_logits =
        memo_ != nullptr ? arena_.Get(kHitLogits)->data() : nullptr;

    // Pass 2: per-query expansion, keep, and termination — the single-query
    // PredictRouteBeam body verbatim, indexed into the shared batch.
    for (int64_t q = 0; q < q_count; ++q) {
      QueryBeam& qb = query_beams_[static_cast<size_t>(q)];
      if (qb.finished) continue;
      PredictItem& item = (*items)[static_cast<size_t>(q)];
      bool q_any_active = false;
      qb.pool_size = 0;
      for (int i = 0; i < qb.num_beams; ++i) {
        Hyp& beam = qb.beams[static_cast<size_t>(i)];
        if (beam.done) {
          beam.src_row = -1;
          beam.hit_src = -1;
          CopyHyp(beam, &qb.pool[qb.pool_size++]);
          continue;
        }
        const SegmentId cur = beam.route.back();
        const auto& outs = net_.OutSegments(cur);
        if (outs.empty()) {
          beam.done = true;
          beam.src_row = -1;
          beam.hit_src = -1;
          CopyHyp(beam, &qb.pool[qb.pool_size++]);
          continue;
        }
        q_any_active = true;
        const int a = qb.active_row[static_cast<size_t>(i)];
        const int hr = qb.hit_row[static_cast<size_t>(i)];
        const float* lrow =
            hr >= 0 ? hit_logits + static_cast<int64_t>(hr) * nmax_
                    : logits + static_cast<int64_t>(a) * nmax_;
        const int deg = static_cast<int>(outs.size());
        ranked_.clear();
        for (int s = 0; s < deg; ++s) {
          if (beam.visited[static_cast<size_t>(
                  outs[static_cast<size_t>(s)])]) {
            continue;
          }
          ranked_.emplace_back(ValidSlotLogProb(lrow, deg, s), s);
        }
        if (ranked_.empty()) {
          beam.done = true;
          beam.src_row = -1;
          beam.hit_src = -1;
          CopyHyp(beam, &qb.pool[qb.pool_size++]);
          continue;
        }
        std::sort(ranked_.rbegin(), ranked_.rend());
        const int expand =
            std::min<int>(width, static_cast<int>(ranked_.size()));
        for (int e = 0; e < expand; ++e) {
          Hyp& nxt = qb.pool[qb.pool_size++];
          CopyHyp(beam, &nxt);
          nxt.src_row = a;
          nxt.hit_src = hr;
          if (memo_ != nullptr) {
            nxt.key = nn::infer::MixKey(beam.key, static_cast<uint64_t>(cur));
          }
          nxt.log_prob += ranked_[static_cast<size_t>(e)].first;
          const SegmentId seg = outs[static_cast<size_t>(
              ranked_[static_cast<size_t>(e)].second)];
          nxt.route.push_back(seg);
          nxt.visited[static_cast<size_t>(seg)] = 1;
          nxt.done = ShouldStop(net_, item.ctx->destination, seg, config_,
                                /*rng=*/nullptr);
        }
      }

      qb.pool_order.resize(qb.pool_size);
      std::iota(qb.pool_order.begin(), qb.pool_order.end(), 0);
      std::sort(qb.pool_order.begin(), qb.pool_order.end(),
                [&qb](int x, int y) {
                  return qb.pool[static_cast<size_t>(x)].Score() >
                         qb.pool[static_cast<size_t>(y)].Score();
                });
      const int keep = std::min<int>(width, static_cast<int>(qb.pool_size));
      for (int w = 0; w < keep; ++w) {
        const Hyp& src = qb.pool[static_cast<size_t>(qb.pool_order[w])];
        CopyHyp(src, &qb.beams[static_cast<size_t>(w)]);
        if (src.src_row >= 0) {
          for (int l = 0; l < gru_.num_layers(); ++l) {
            std::copy_n(StateSlot(l)->data() +
                            static_cast<int64_t>(src.src_row) * hd,
                        hd, GatherSlot(l)->data() + (q * width + w) * hd);
            std::copy_n(dstate_[static_cast<size_t>(l)].data() +
                            static_cast<int64_t>(src.src_row) * hd,
                        hd, dgather_[static_cast<size_t>(l)].data() +
                                (q * width + w) * hd);
          }
        } else if (src.hit_src >= 0) {
          for (int l = 0; l < gru_.num_layers(); ++l) {
            const float* hs = HitSlot(l)->data() +
                              static_cast<int64_t>(src.hit_src) * hd;
            std::copy_n(hs, hd,
                        GatherSlot(l)->data() + (q * width + w) * hd);
            nn::infer::ToDouble(hs,
                                dgather_[static_cast<size_t>(l)].data() +
                                    (q * width + w) * hd,
                                hd);
          }
        }
      }
      qb.num_beams = keep;

      // Same termination order as the single-query loop: boxed-in, then
      // all-done, then the per-item deadline between completed steps.
      bool q_done = !q_any_active;
      if (!q_done) {
        bool all_done = true;
        for (int i = 0; i < qb.num_beams; ++i) {
          if (!qb.beams[static_cast<size_t>(i)].done) all_done = false;
        }
        q_done = all_done;
        if (!q_done && item.deadline_ms > 0.0 &&
            qb.watch.ElapsedMillis() >= item.deadline_ms) {
          item.budget_hit = true;
          q_done = true;
        }
      }
      if (q_done) {
        qb.finished = true;
        --live;
        FinalizeQuery(qb, &item);
      }
    }
  }
  // Queries that ran out the step budget with live hypotheses.
  for (int64_t q = 0; q < q_count; ++q) {
    QueryBeam& qb = query_beams_[static_cast<size_t>(q)];
    if (qb.finished) continue;
    qb.finished = true;
    FinalizeQuery(qb, &(*items)[static_cast<size_t>(q)]);
  }
}

void InferenceSession::ScoreRoutesMulti(std::vector<ScoreItem>* items) {
  ctx_ptrs_.clear();
  rows_.clear();
  row_index_.clear();
  row_ctx_.clear();
  int flat = 0;
  for (size_t i = 0; i < items->size(); ++i) {
    ScoreItem& item = (*items)[i];
    const std::vector<traj::Route>& routes = *item.routes;
    item.scores.assign(routes.size(), 0.0);
    for (size_t j = 0; j < routes.size(); ++j, ++flat) {
      if (routes[j].size() < 2) continue;  // score 0 by convention
      if (!net_.ValidateRoute(routes[j]).ok()) {
        item.scores[j] = kNegInf;
        continue;
      }
      rows_.push_back(&routes[j]);
      row_index_.push_back(flat);
      row_ctx_.push_back(static_cast<int>(ctx_ptrs_.size()));
    }
    ctx_ptrs_.push_back(item.ctx);
  }
  if (rows_.empty()) return;
  PrepareContexts(ctx_ptrs_);
  ResetState(static_cast<int64_t>(rows_.size()));
  batch_out_.assign(rows_.size(), 0.0);
  ScorePaddedBatchMulti(rows_, row_ctx_, &batch_out_);
  for (size_t b = 0; b < rows_.size(); ++b) {
    // Invert the flat index back to (item, route).
    int remaining = row_index_[b];
    size_t i = 0;
    while (remaining >= static_cast<int>((*items)[i].routes->size())) {
      remaining -= static_cast<int>((*items)[i].routes->size());
      ++i;
    }
    (*items)[i].scores[static_cast<size_t>(remaining)] = batch_out_[b];
  }
}

void InferenceSession::ScorePaddedBatchMulti(
    const std::vector<const traj::Route*>& rows, const std::vector<int>& row_ctx,
    std::vector<double>* out) {
  const int64_t batch = static_cast<int64_t>(rows.size());
  size_t max_len = 0;
  for (const traj::Route* r : rows) max_len = std::max(max_len, r->size());
  tokens_.resize(static_cast<size_t>(batch));
  for (size_t t = 0; t + 1 < max_len; ++t) {
    for (int64_t b = 0; b < batch; ++b) {
      const traj::Route& r = *rows[static_cast<size_t>(b)];
      // Finished rows re-feed their last input token, exactly like
      // ScorePaddedBatch: row-local kernels keep the padding invisible.
      const size_t i = std::min(t, r.size() - 2);
      tokens_[static_cast<size_t>(b)] = static_cast<int>(r[i]);
    }
    StepBatchMulti(tokens_.data(), row_ctx.data(), batch,
                   /*want_logits=*/true);
    const float* logits = arena_.Get(kLogits)->data();
    for (int64_t b = 0; b < batch; ++b) {
      const traj::Route& r = *rows[static_cast<size_t>(b)];
      if (t + 1 >= r.size()) continue;
      const int slot = net_.NeighborSlot(r[t], r[t + 1]);
      DEEPST_DCHECK(slot >= 0);
      (*out)[static_cast<size_t>(b)] += ValidSlotLogProb(
          logits + b * nmax_, net_.OutDegree(r[t]), slot);
    }
  }
}

void InferenceSession::ScorePaddedBatch(
    const std::vector<const traj::Route*>& rows, size_t first_scored,
    std::vector<double>* out) {
  const int64_t batch = static_cast<int64_t>(rows.size());
  size_t max_len = 0;
  for (const traj::Route* r : rows) max_len = std::max(max_len, r->size());
  tokens_.resize(static_cast<size_t>(batch));
  for (size_t t = first_scored; t + 1 < max_len; ++t) {
    for (int64_t b = 0; b < batch; ++b) {
      const traj::Route& r = *rows[static_cast<size_t>(b)];
      // Finished rows re-feed their last input token; their state keeps
      // evolving but nothing more is recorded for them, and every kernel is
      // row-local, so the padding never affects other rows.
      const size_t i = std::min(t, r.size() - 2);
      tokens_[static_cast<size_t>(b)] = static_cast<int>(r[i]);
    }
    StepBatch(tokens_.data(), batch, /*want_logits=*/true);
    const float* logits = arena_.Get(kLogits)->data();
    for (int64_t b = 0; b < batch; ++b) {
      const traj::Route& r = *rows[static_cast<size_t>(b)];
      if (t + 1 >= r.size()) continue;
      const int slot = net_.NeighborSlot(r[t], r[t + 1]);
      DEEPST_DCHECK(slot >= 0);
      (*out)[static_cast<size_t>(b)] += ValidSlotLogProb(
          logits + b * nmax_, net_.OutDegree(r[t]), slot);
    }
  }
}

double InferenceSession::ScoreRoute(const PredictionContext& ctx,
                                    const traj::Route& route) {
  if (route.size() < 2) return 0.0;
  if (!net_.ValidateRoute(route).ok()) return kNegInf;
  PrepareContext(ctx);
  ResetState(1);
  rows_.assign(1, &route);
  batch_out_.assign(1, 0.0);
  ScorePaddedBatch(rows_, 0, &batch_out_);
  return batch_out_[0];
}

std::vector<double> InferenceSession::ScoreRoutes(
    const PredictionContext& ctx, const std::vector<traj::Route>& routes) {
  std::vector<double> result(routes.size(), 0.0);
  rows_.clear();
  row_index_.clear();
  for (size_t i = 0; i < routes.size(); ++i) {
    if (routes[i].size() < 2) continue;  // score 0 by convention
    if (!net_.ValidateRoute(routes[i]).ok()) {
      result[i] = kNegInf;
      continue;
    }
    rows_.push_back(&routes[i]);
    row_index_.push_back(static_cast<int>(i));
  }
  if (rows_.empty()) return result;
  PrepareContext(ctx);
  ResetState(static_cast<int64_t>(rows_.size()));
  batch_out_.assign(rows_.size(), 0.0);
  ScorePaddedBatch(rows_, 0, &batch_out_);
  for (size_t b = 0; b < rows_.size(); ++b) {
    result[static_cast<size_t>(row_index_[b])] = batch_out_[b];
  }
  return result;
}

double InferenceSession::ScoreContinuation(const PredictionContext& ctx,
                                           const traj::Route& prefix,
                                           const traj::Route& continuation) {
  if (prefix.empty()) return ScoreRoute(ctx, continuation);
  DEEPST_CHECK(!continuation.empty());
  DEEPST_CHECK_EQ(continuation.front(), prefix.back());
  full_.assign(prefix.begin(), prefix.end());
  full_.insert(full_.end(), continuation.begin() + 1, continuation.end());
  if (!net_.ValidateRoute(full_).ok()) return kNegInf;
  PrepareContext(ctx);
  ResetState(1);
  const size_t first_scored = prefix.size() - 1;
  for (size_t t = 0; t < first_scored; ++t) {
    const int token = static_cast<int>(full_[t]);
    StepBatch(&token, 1, /*want_logits=*/false);  // warm, unscored
  }
  rows_.assign(1, &full_);
  batch_out_.assign(1, 0.0);
  ScorePaddedBatch(rows_, first_scored, &batch_out_);
  return batch_out_[0];
}

std::vector<double> InferenceSession::ScoreContinuations(
    const PredictionContext& ctx, const traj::Route& prefix,
    const std::vector<traj::Route>& candidates) {
  if (prefix.empty()) return ScoreRoutes(ctx, candidates);
  std::vector<double> result(candidates.size(), 0.0);
  if (fulls_.size() < candidates.size()) fulls_.resize(candidates.size());
  rows_.clear();
  row_index_.clear();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const traj::Route& cont = candidates[i];
    DEEPST_CHECK(!cont.empty());
    DEEPST_CHECK_EQ(cont.front(), prefix.back());
    traj::Route& full = fulls_[i];
    full.assign(prefix.begin(), prefix.end());
    full.insert(full.end(), cont.begin() + 1, cont.end());
    if (!net_.ValidateRoute(full).ok()) {
      result[i] = kNegInf;
      continue;
    }
    rows_.push_back(&full);
    row_index_.push_back(static_cast<int>(i));
  }
  if (rows_.empty()) return result;
  PrepareContext(ctx);
  // The prefix is shared: warm the state once at batch 1, then broadcast
  // the warmed rows to every candidate.
  ResetState(1);
  const size_t first_scored = prefix.size() - 1;
  for (size_t t = 0; t < first_scored; ++t) {
    const int token = static_cast<int>(prefix[t]);
    StepBatch(&token, 1, /*want_logits=*/false);
  }
  const int64_t batch = static_cast<int64_t>(rows_.size());
  const int64_t hd = gru_.hidden_dim;
  EnsureStepScratch(batch);
  for (int l = 0; l < gru_.num_layers(); ++l) {
    nn::Tensor* warm = arena_.Acquire(GatherSlotIndex(l), {1, hd});
    std::copy_n(StateSlot(l)->data(), hd, warm->data());
    nn::Tensor* st = arena_.Acquire(StateSlotIndex(l), {batch, hd});
    double* sd = dstate_[static_cast<size_t>(l)].data();
    for (int64_t b = 0; b < batch; ++b) {
      std::copy_n(warm->data(), hd, st->data() + b * hd);
      // Broadcast the warmed row's double mirror alongside (row 0 is
      // current after the warm steps; double copies are exact).
      if (b > 0) std::copy_n(sd, hd, sd + b * hd);
    }
  }
  batch_out_.assign(rows_.size(), 0.0);
  ScorePaddedBatch(rows_, first_scored, &batch_out_);
  for (size_t b = 0; b < rows_.size(); ++b) {
    result[static_cast<size_t>(row_index_[b])] = batch_out_[b];
  }
  return result;
}

void InferenceSession::TopSlotsAlongRoute(const PredictionContext& ctx,
                                          const traj::Route& route,
                                          std::vector<int>* slots) {
  slots->clear();
  if (route.size() < 2) return;
  PrepareContext(ctx);
  ResetState(1);
  // Teacher-forced and deliberately uncached: the accuracy-parity harness
  // compares the raw kernels of each packed precision, so memo hits (which
  // replay whatever precision first filled the cache) must not leak in.
  for (size_t t = 0; t + 1 < route.size(); ++t) {
    const int token = static_cast<int>(route[t]);
    StepBatch(&token, 1, /*want_logits=*/true);
    const float* lv = arena_.Get(kLogits)->data();
    const int deg = net_.OutDegree(route[t]);
    int best = 0;
    for (int s = 1; s < deg; ++s) {
      if (lv[s] > lv[best]) best = s;
    }
    slots->push_back(best);
  }
}

}  // namespace infer
}  // namespace core
}  // namespace deepst
