#ifndef DEEPST_CORE_INFER_SESSION_H_
#define DEEPST_CORE_INFER_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/deepst_model.h"
#include "nn/infer/forward.h"
#include "nn/infer/memo.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {
namespace infer {

// Model weights packed once for the GEMV fast path and shared read-only by
// every pooled session (packing happens at most once per model generation,
// not per session — "pack at pool construction"). Built at the model's
// config.infer_precision; the embedding table stays double in every mode
// (it is gathered, not multiplied). Biases are read through tensor pointers
// into the model, which must outlive the view.
struct SharedInferWeights {
  nn::infer::Precision precision = nn::infer::Precision::kDouble;
  nn::infer::GruStackView gru;
  nn::infer::PackedMatrix alpha_w;   // [N_max, H]
  std::vector<double> emb_table_d;   // [V, emb_dim]
  size_t packed_weight_bytes = 0;    // GEMV operand bytes at this precision
  // Bytes of the K-major panel sidecars built for the blocked GEMM path
  // (config.gemm_blocking; 0 when off). Panels duplicate the full blocks of
  // each matrix in streaming order, so this is close to a second copy of
  // packed_weight_bytes — reported separately for footprint accounting.
  size_t packed_panel_bytes = 0;

  static std::shared_ptr<const SharedInferWeights> Build(
      const DeepSTModel& model);
};

// Graph-free inference engine for one DeepSTModel. A session owns every
// scratch buffer the generation and scoring loops need (a nn::infer::Arena
// plus preallocated hypothesis pools), so after warmup a call performs zero
// heap allocation. Sessions are NOT thread-safe; DeepSTModel keeps a
// mutex-guarded pool of them and leases one per call, which is what makes
// the public model API safe under EvaluatePredictionParallel.
//
// Semantics mirror the model's *Reference methods exactly: the same valid-
// slot renormalization, visit guards, beam bookkeeping and ShouldStop rng
// call order. Numerics differ from the reference only through the forward
// kernels' 4-lane accumulation (~1e-7 per logit, parity-tested at 1e-5);
// the fast path itself is bitwise identical for every thread count and for
// batched vs one-at-a-time scoring.
//
// Per-query precomputation (PrepareContext): the GRU input is
// [token_embedding, dest_repr, traffic_repr] where the context part is
// constant for a whole query, so its layer-0 input-to-hidden product
// (+ b_ih) is folded into a per-query bias and each step only multiplies
// the embedding columns. Likewise alpha's bias, dest_term and traffic_term
// collapse into one per-query logit bias row.
//
// Round two (this file + nn/infer/forward.h): the per-step GEMV weights are
// packed once per model at config.infer_precision (double/bf16/int8) and
// shared across the pool, and the prediction paths sit behind the model's
// TransitionMemoCache — a (context, token-prefix) keyed cache of post-step
// logits + hidden state. A hit replays kernel outputs bitwise (asserted in
// quant_test), so memoization changes speed, never results; bf16/int8
// change results within the gated accuracy tolerance (docs/inference.md).
class InferenceSession {
 public:
  explicit InferenceSession(const DeepSTModel* model);

  // Counterparts of the DeepSTModel prediction API (same contracts).
  traj::Route PredictRoute(const PredictionContext& ctx,
                           roadnet::SegmentId origin, util::Rng* rng);
  traj::Route PredictRouteBeam(const PredictionContext& ctx,
                               roadnet::SegmentId origin, util::Rng* rng,
                               double deadline_ms = 0.0,
                               bool* budget_hit = nullptr);
  double ScoreRoute(const PredictionContext& ctx, const traj::Route& route);
  double ScoreContinuation(const PredictionContext& ctx,
                           const traj::Route& prefix,
                           const traj::Route& continuation);

  // Batched scoring: all candidates advance through one padded
  // [batch, max_len] sequence of GRU steps. Results are bitwise identical
  // to scoring each route individually through this session.
  std::vector<double> ScoreRoutes(const PredictionContext& ctx,
                                  const std::vector<traj::Route>& routes);
  // Shared-prefix variant for recovery: warms the state over `prefix` once
  // (batch 1), broadcasts it, then scores all continuations as one batch.
  std::vector<double> ScoreContinuations(
      const PredictionContext& ctx, const traj::Route& prefix,
      const std::vector<traj::Route>& candidates);

  // -- Cross-query batching (the serve daemon's scheduler) --------------------
  // Work items are core::PredictItem / core::ScoreItem (deepst_model.h).
  // Each item carries its own folded context; the queries share every padded
  // GRU step, with each batch row reading its own query's context biases
  // through the row-mapped kernel (nn::infer::LinearForwardRowBias). Kernels
  // are row-local, so each item's result is bitwise identical to the
  // corresponding single-query call on this session.
  //
  // Lock-step beam search over several queries: every expansion step runs
  // one padded StepBatch across all live hypotheses of all queries. Requires
  // the deterministic MAP config (map_prediction && !sample_stop, checked):
  // no rng draws occur, so batch composition cannot perturb any stream. A
  // query whose deadline expires drops out of the batch with its best
  // hypothesis so far; the others keep stepping.
  void PredictRoutesBeamMulti(std::vector<PredictItem>* items);
  // Batched scoring across queries: every candidate route of every item
  // advances through one padded [rows, max_len] step sequence. Bitwise
  // identical per item to ScoreRoutes(*item.ctx, *item.routes).
  void ScoreRoutesMulti(std::vector<ScoreItem>* items);

  // Teacher-forced top-1 slots: feeds route[0..t] and appends the argmax
  // valid next-segment slot at each of the route.size()-1 transitions. The
  // precision accuracy-parity harness compares these across packed weight
  // precisions; runs uncached so each precision is measured on raw kernels.
  void TopSlotsAlongRoute(const PredictionContext& ctx,
                          const traj::Route& route, std::vector<int>* slots);

  // Number of scratch-storage growths so far; constant across calls once
  // the session is warm (the zero-allocation steady state).
  int64_t arena_grow_count() const { return arena_.grow_count(); }
  // Growths of the non-arena step scratch (gathered embeddings and the
  // per-layer double state mirrors). Reserved once per call at the max
  // batch (ResetState / beam setup), so like arena_grow_count this is
  // constant once the session is warm — StepBatch itself never resizes.
  int64_t scratch_grow_count() const { return scratch_grow_count_; }

 private:
  // Scratch arena slot map. Per-layer slots follow the fixed block.
  enum Slot {
    kCtxIh = 0,     // [1, 3H] layer-0 context input product + b_ih
    kLogitBias,     // [1, N_max] alpha bias + dest_term + traffic_term
    kGi,            // [B, 3H]
    kGh,            // [B, 3H]
    kLogits,        // [B, N_max]
    kHitLogits,     // [rows, N_max] memo-hit staging (beam paths)
    kPerLayer,      // first of 3 slots per GRU layer: state, gather, hit
  };
  int StateSlotIndex(int layer) const { return kPerLayer + 3 * layer; }
  int GatherSlotIndex(int layer) const { return kPerLayer + 3 * layer + 1; }
  int HitSlotIndex(int layer) const { return kPerLayer + 3 * layer + 2; }
  nn::Tensor* StateSlot(int layer) { return arena_.Get(StateSlotIndex(layer)); }
  nn::Tensor* GatherSlot(int layer) {
    return arena_.Get(GatherSlotIndex(layer));
  }
  // Memo-hit staging rows: a probe that hits writes the cached post-step
  // state here (row-indexed like GatherSlot), bypassing StepBatch entirely.
  nn::Tensor* HitSlot(int layer) { return arena_.Get(HitSlotIndex(layer)); }

  // Folds the per-query context into kCtxVec/kCtxIh/kLogitBias.
  void PrepareContext(const PredictionContext& ctx);
  // Multi-query variant: folds each context into its own row of kCtxIh
  // ([Q, 3H]) and kLogitBias ([Q, N_max]); each row is produced by the same
  // arithmetic as PrepareContext, so row q is bitwise identical to preparing
  // context q alone.
  void PrepareContexts(const std::vector<const PredictionContext*>& ctxs);
  // Re-shapes the per-layer state slots to [batch, H] and zero-fills them
  // (float slots and their double mirrors alike).
  void ResetState(int64_t batch);
  // Grow-only reservation of the step scratch (embd_ / dstate_) for up to
  // `batch` rows; called once per public call at the max batch so StepBatch
  // never reallocates. EnsureGatherScratch is the beam-path counterpart for
  // the gather mirrors (rows = queries x width).
  void EnsureStepScratch(int64_t batch);
  void EnsureGatherScratch(int64_t rows);
  // One batched GRU step: reads tokens, updates the state slots in place
  // and (when `want_logits`) fills kLogits with [batch, N_max] rows.
  void StepBatch(const int* tokens, int64_t batch, bool want_logits);
  // Multi-context step: row b reads the context biases of query row_ctx[b]
  // (kCtxIh / kLogitBias as prepared by PrepareContexts). Row-for-row
  // bitwise identical to StepBatch under that row's own context.
  void StepBatchMulti(const int* tokens, const int* row_ctx, int64_t batch,
                      bool want_logits);

  // One beam-search hypothesis; fixed-capacity, reused across calls.
  struct Hyp {
    traj::Route route;
    std::vector<uint8_t> visited;  // by SegmentId
    double log_prob = 0.0;
    bool done = false;
    int src_row = -1;  // row in the stepped batch this hyp's state lives in
    int hit_src = -1;  // memo-hit staging row when the step was cached
    // Memo key of this hypothesis: ctx signature mixed with every token fed
    // so far (i.e. the full route); identifies the post-step logits/state.
    nn::infer::MemoKey key;

    double Score() const;
  };
  void CopyHyp(const Hyp& src, Hyp* dst);
  // Scores one padded batch of routes (shared tail of ScoreRoutes /
  // ScoreContinuations); `first_scored` transitions only warm the state.
  void ScorePaddedBatch(const std::vector<const traj::Route*>& rows,
                        size_t first_scored, std::vector<double>* out);
  // Multi-context counterpart: row b steps under row_ctx[b]'s biases.
  void ScorePaddedBatchMulti(const std::vector<const traj::Route*>& rows,
                             const std::vector<int>& row_ctx,
                             std::vector<double>* out);

  // Per-query beam bookkeeping for PredictRoutesBeamMulti; pools sized like
  // the single-query beams_/pool_ and grown once to the largest batch seen.
  struct QueryBeam {
    std::vector<Hyp> beams;
    std::vector<Hyp> pool;
    size_t pool_size = 0;
    std::vector<int> pool_order;
    std::vector<int> active_row;  // beam index -> batch row or -1
    std::vector<int> hit_row;     // beam index -> memo staging row or -1
    int num_beams = 0;
    bool finished = false;
    util::Stopwatch watch;  // per-item deadline budget
  };
  void EnsureQueryBeams(size_t count);
  // Copies the best hypothesis (preferring completed ones, like the single-
  // query epilogue) into the item's route.
  void FinalizeQuery(const QueryBeam& qb, PredictItem* item);

  // -- Memoization plumbing (memo_ == nullptr disables everything) -----------
  // Context signature: hash of the exact context tensor bytes (so a traffic
  // or destination change produces disjoint keys by construction).
  nn::infer::MemoKey ContextKey(const PredictionContext& ctx) const;
  // Layer-state pointer scratch for memo Lookup/Insert: points state_ptrs_
  // at row `row` of every layer's HitSlot / StateSlot.
  float* const* HitStatePtrs(int64_t row);
  float* const* BatchStatePtrs(int64_t row);

  const DeepSTModel* model_;
  const roadnet::RoadNetwork& net_;
  const DeepSTConfig& config_;
  // Packed weights shared across the model's session pool (see
  // SharedInferWeights); the references below alias *weights_.
  std::shared_ptr<const SharedInferWeights> weights_shared_;
  const nn::infer::GruStackView& gru_;
  const std::vector<double>& emb_table_d_;   // [V, emb_dim]
  const nn::infer::PackedMatrix& alpha_w_;   // [N_max, H]
  const nn::Tensor* alpha_b_;                // [N_max]
  int64_t emb_dim_;
  int64_t nmax_;
  // Shared transition memo cache (null = disabled). The epoch is pinned per
  // query in PrepareContext(s), so a wholesale invalidation mid-query keeps
  // this query's view self-consistent and its insertions dead on arrival.
  nn::infer::TransitionMemoCache* memo_;
  uint64_t memo_epoch_ = 0;
  nn::infer::MemoKey ctx_key_;
  std::vector<nn::infer::MemoKey> ctx_keys_;  // multi-query signatures
  std::vector<float*> state_ptrs_;            // [layers] pointer scratch
  std::vector<int> hit_row_;  // single-query beam: beam index -> hit row

  nn::infer::Arena arena_;
  // Double-precision activation scratch fed to the GEMV kernels: gathered
  // token embeddings, the persistent per-layer double mirrors of the float
  // hidden states, and the per-query context vector. dstate_[l] always
  // equals ToDouble(StateSlot(l)) for the active rows — refreshed once per
  // layer per step (after GruGates), instead of converting every GEMV
  // operand — and dgather_[l] mirrors GatherSlot(l) the same way through
  // the beam keep phase (double->double row copies are exact, so the
  // mirrors carry the same values ToDouble would produce). Grow-only via
  // EnsureStepScratch / EnsureGatherScratch.
  std::vector<double> embd_;                  // [B, emb_dim]
  std::vector<std::vector<double>> dstate_;   // per layer: [B, H]
  std::vector<std::vector<double>> dgather_;  // per layer: [rows, H]
  int64_t scratch_grow_count_ = 0;
  std::vector<double> ctxd_;  // [ctx_dim]
  // Beam pools: beams_ holds the current width hypotheses, pool_ the
  // candidate set of one step (carried-over done beams + expansions).
  std::vector<Hyp> beams_;
  std::vector<Hyp> pool_;
  size_t pool_size_ = 0;
  std::vector<int> pool_order_;            // sort permutation over pool_
  std::vector<std::pair<double, int>> ranked_;  // slot ranking scratch
  std::vector<int> tokens_;
  std::vector<int> active_row_;            // beam index -> batch row or -1
  std::vector<double> weights_;            // sampled-prediction scratch
  std::vector<uint8_t> visited_;           // greedy-path loop guard
  std::vector<const traj::Route*> rows_;   // batched-scoring row set
  std::vector<int> row_index_;             // batch row -> caller index
  std::vector<double> batch_out_;
  // Cross-query batching scratch.
  std::vector<int> row_ctx_;               // batch row -> query index
  std::vector<const PredictionContext*> ctx_ptrs_;
  std::vector<QueryBeam> query_beams_;
  traj::Route full_;                       // prefix + continuation scratch
  std::vector<traj::Route> fulls_;
};

}  // namespace infer
}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_INFER_SESSION_H_
