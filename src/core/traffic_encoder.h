#ifndef DEEPST_CORE_TRAFFIC_ENCODER_H_
#define DEEPST_CORE_TRAFFIC_ENCODER_H_

#include <memory>
#include <vector>

#include "nn/conv_layers.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace deepst {
namespace core {

// Gaussian posterior parameters of q(c | C).
struct TrafficPosterior {
  nn::VarPtr mu;      // [B, traffic_dim]
  nn::VarPtr logvar;  // [B, traffic_dim]
};

// The paper's inference net NN_1 (Section IV-D / V-A): three convolution
// blocks (Conv2d -> BatchNorm2d -> LeakyReLU) over the cell-speed tensor,
// global average pooling, then two MLP heads with a shared hidden layer
// producing mu(f) and log sigma^2(f).
class TrafficEncoder : public nn::Module {
 public:
  // Input tensors are [2, rows, cols] (speed + count channels).
  TrafficEncoder(int rows, int cols, int channels, int traffic_dim,
                 int mlp_hidden, util::Rng* rng);

  // Encodes a batch of traffic tensors (stacked to [B, 2, rows, cols]).
  TrafficPosterior Encode(const std::vector<const nn::Tensor*>& tensors,
                          bool training);

  int traffic_dim() const { return traffic_dim_; }

 private:
  // Conv trunk + 2x2 average pooling, flattened to [B, feature_dim_]. The
  // pooling is kept coarse (not global) so the *location* of congestion
  // survives into the latent -- a globally pooled code can only say "how
  // congested", not "where", which is what route decisions need.
  nn::VarPtr Features(const nn::VarPtr& x, bool training);

  int rows_;
  int cols_;
  int traffic_dim_;
  int64_t feature_dim_ = 0;
  std::unique_ptr<nn::ConvBlock> block1_;
  std::unique_ptr<nn::ConvBlock> block2_;
  std::unique_ptr<nn::ConvBlock> block3_;
  std::unique_ptr<nn::LinearLayer> shared_;  // pooled features -> hidden
  std::unique_ptr<nn::LinearLayer> mu_head_;
  std::unique_ptr<nn::LinearLayer> logvar_head_;
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_TRAFFIC_ENCODER_H_
