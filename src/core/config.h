#ifndef DEEPST_CORE_CONFIG_H_
#define DEEPST_CORE_CONFIG_H_

#include <cstdint>

#include "nn/infer/precision.h"

namespace deepst {
namespace core {

// How the model represents the trip destination (paper Section IV-C and the
// CSSRNN baseline of Section V-A).
enum class DestinationMode {
  // K-destination proxies with the adjoint generative model (DeepST).
  kProxies,
  // Embedding of the exact final road segment, assumed known in advance
  // (the CSSRNN baseline [7]).
  kFinalSegment,
  // No destination information (the vanilla RNN baseline).
  kNone,
};

// Hyperparameters of DeepST and its ablations. Defaults are scaled-down
// versions of the paper's Section V-A settings (hidden 256 -> 64 etc.) so
// CPU training converges in seconds-to-minutes; EXPERIMENTS.md documents the
// mapping.
struct DeepSTConfig {
  // -- Architecture ----------------------------------------------------------
  int segment_embedding_dim = 32;  // input token embedding
  int gru_hidden = 64;             // paper: 256
  int gru_layers = 2;              // paper: 3
  int dest_dim = 32;               // n_x, paper: 128
  int traffic_dim = 16;            // |c|, paper: 256
  int num_proxies = 64;            // K, paper: 500-1000
  int cnn_channels = 12;           // conv block width, paper unspecified
  int mlp_hidden = 64;             // hidden size of all MLPs, paper: 256

  // -- Explanatory factors (ablation switches) --------------------------------
  bool use_traffic = true;  // false -> DeepST-C
  DestinationMode destination_mode = DestinationMode::kProxies;
  // Ablation: feed the posterior mean instead of a reparameterized sample of
  // c during training (reduces input noise at the cost of a biased ELBO).
  bool deterministic_traffic_latent = false;

  // -- Training --------------------------------------------------------------
  float gumbel_tau = 0.66f;  // Gumbel-Softmax temperature
  // Paper Eq. 7 literally multiplies the destination log-likelihood by the
  // route length (sum over i of a term independent of i); false uses the
  // unscaled variant (ablation).
  bool dest_loss_length_scaled = true;
  // Weight of the destination reconstruction + KL block relative to the
  // route term.
  float dest_loss_weight = 1.0f;
  // Down-weighted KL (beta-VAE style): with the full ELBO weight the latents
  // over-regularize at this data scale (see EXPERIMENTS.md calibration
  // notes).
  float kl_weight = 0.1f;
  // Train the softmax over all N_max slots (paper: unmasked; the data pushes
  // mass onto the valid ones). When true, invalid slots are masked to -inf
  // during training (ablation).
  bool mask_invalid_slots = false;
  // Scheduled sampling (the paper's "future work" on accumulated generation
  // errors): with this probability a training step's input token is replaced
  // by the model's own previous prediction, when that prediction shares the
  // true segment's end vertex (so the step target stays well defined).
  // 0 disables.
  float scheduled_sampling_prob = 0.0f;

  // -- Generation (Algorithm 2) -----------------------------------------------
  // Deterministic stop: end generation once the projection distance of the
  // destination onto the current segment is below this. The paper's sampled
  // Bernoulli stop with f_s = 1/(1 + d_km) is used when sample_stop=true.
  double stop_distance_m = 500.0;
  bool sample_stop = false;
  int max_route_steps = 80;
  // Width of the beam search used to return the highest-likelihood route
  // (Section IV-D: "in the prediction stage only the one with the highest
  // likelihood score will be returned"). 1 = greedy.
  int beam_width = 4;
  // Use posterior means / modes for latents at prediction (deterministic);
  // when false, sample as in Algorithm 2.
  bool map_prediction = true;
  // Route generation / scoring through the autodiff graph instead of the
  // graph-free fast path (src/core/infer). The graph path is the reference
  // implementation; the fast path matches it within 1e-5 (docs/inference.md).
  bool graph_inference = false;
  // Packed weight precision of the fast path's GEMV kernels (CLI
  // --precision double|bf16|int8). double is bitwise the PR 3 baseline;
  // bf16/int8 trade exactness for bandwidth and are accuracy-parity-gated
  // (docs/inference.md). Ignored by the graph path.
  nn::infer::Precision infer_precision = nn::infer::Precision::kDouble;
  // Build K-major panel sidecars into the shared packed weights so batched
  // (beam / multi-query) GEMVs run through the register-blocked GEMM
  // micro-kernels (docs/inference.md "GEMM blocking"). Blocked results are
  // bitwise identical to the per-element kernels at every precision, so
  // this only changes speed; off reproduces the PR 8 kernel schedule
  // exactly (the bench A/B baseline).
  bool gemm_blocking = true;
  // Entry budget of the transition-distribution memo cache shared across
  // the session pool (CLI --memo-capacity); 0 disables memoization. Hits
  // are bitwise identical to recomputing, so this only changes speed.
  int64_t memo_cache_capacity = 16384;

  uint64_t seed = 1234;

  // Compute threads for the nn backend during model construction and
  // prediction. 0 leaves the process-wide backend untouched; N >= 1 installs
  // an N-thread backend (1 = serial). Thread count never changes results.
  int num_threads = 0;
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_CONFIG_H_
