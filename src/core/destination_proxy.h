#ifndef DEEPST_CORE_DESTINATION_PROXY_H_
#define DEEPST_CORE_DESTINATION_PROXY_H_

#include <memory>
#include <vector>

#include "geo/point.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace deepst {
namespace core {

// The paper's adjoint generative model for destinations (Section IV-C):
//   pi ~ Categorical(eta),    x ~ Normal(M pi, diag(S pi)),
// with proxy embedding f_x(x) = W pi. The posterior q(pi | x) is an MLP
// encoder trained through the Gumbel-Softmax relaxation.
//
// Coordinates are normalized into roughly [-1, 1] via an affine map fitted
// to the network bounding box so that the proxy means M live on a sane
// scale.
class DestinationProxyModel : public nn::Module {
 public:
  DestinationProxyModel(int num_proxies, int dest_dim,
                        const geo::BoundingBox& bounds, int mlp_hidden,
                        util::Rng* rng);

  int num_proxies() const { return num_proxies_; }

  // Normalizes raw coordinates into model space, [B, 2].
  nn::Tensor NormalizeDestinations(const std::vector<geo::Point>& dests) const;

  // q(pi|x) logits, [B, K].
  nn::VarPtr EncodeLogits(const nn::Tensor& x_normalized) const;

  // Differentiable Gumbel-Softmax sample of pi, [B, K].
  nn::VarPtr SamplePi(const nn::VarPtr& logits, float tau,
                      util::Rng* rng) const;

  // Hard one-hot of the posterior mode (MAP prediction), [B, K]; constant.
  nn::VarPtr ModePi(const nn::VarPtr& logits) const;

  // Proxy embedding W pi, [B, dest_dim].
  nn::VarPtr Embed(const nn::VarPtr& pi) const;

  // Sum over batch rows of row_weights[b] * log N(x_b; M pi_b, diag(S pi_b)),
  // scalar. x is the *normalized* destination tensor.
  nn::VarPtr DestinationLogProb(const nn::Tensor& x_normalized,
                                const nn::VarPtr& pi,
                                const nn::Tensor& row_weights) const;

  // KL(q(pi|x) || Uniform(K)) summed over the batch, scalar.
  nn::VarPtr Kl(const nn::VarPtr& logits) const;

  // Learned proxy means mapped back to world coordinates (inspection /
  // examples).
  std::vector<geo::Point> ProxyCentersWorld() const;

  // Index of the proxy a destination is allocated to (posterior mode).
  int AllocateProxy(const geo::Point& dest) const;

 private:
  int num_proxies_;
  geo::Point center_;
  double scale_;
  std::unique_ptr<nn::Mlp> encoder_;  // 2 -> hidden -> K
  nn::VarPtr means_;                  // M^T, [K, 2] in normalized space
  nn::VarPtr raw_vars_;               // S^T before softplus, [K, 2]
  nn::VarPtr embeddings_;             // W^T, [K, dest_dim]
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_DESTINATION_PROXY_H_
