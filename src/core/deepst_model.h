#ifndef DEEPST_CORE_DEEPST_MODEL_H_
#define DEEPST_CORE_DEEPST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/destination_proxy.h"
#include "core/traffic_encoder.h"
#include "nn/infer/memo.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "roadnet/road_network.h"
#include "traffic/overlay.h"
#include "traffic/snapshot.h"
#include "traj/types.h"

namespace deepst {
namespace core {

namespace infer {
class InferenceSession;
struct SharedInferWeights;
}  // namespace infer

// A route prediction / scoring query: initial road segment, rough
// destination coordinate, start time (used to look up the real-time traffic
// tensor). `final_segment` is only consulted by the CSSRNN-style
// DestinationMode::kFinalSegment, which assumes the exact last road segment
// is known in advance.
struct RouteQuery {
  roadnet::SegmentId origin = roadnet::kInvalidSegment;
  geo::Point destination;
  double start_time_s = 0.0;
  roadnet::SegmentId final_segment = roadnet::kInvalidSegment;
  // Point-based origin for queries that arrive as raw coordinates: when
  // `origin` is kInvalidSegment and this is set, the serving layer snaps to
  // the nearest segment via the spatial index.
  bool has_origin_point = false;
  geo::Point origin_point;
  // Counterfactual what-if scenario: deterministic edits applied to a copy
  // of the query's pinned traffic snapshot ("close these cells", "scale
  // corridor speeds"). Empty = score/predict against reality. The serving
  // layer validates it and refuses it on variants without traffic.
  traffic::TrafficOverlay overlay;
};

// Degraded-context switches consumed by the MakeContext overload. Each
// substitutes a well-defined prior for an unavailable input, reproducing the
// paper's ablations at serving time: traffic_prior_mean serves DeepST-C
// behavior (c fixed at the standard-normal prior mean, exactly zero since
// gamma has no bias), uniform_proxy serves the DeepST-pi uniform proxy
// mixture (pi = 1/K) when the destination coordinate is unusable. Both are
// deterministic: no rng draws, bitwise reproducible.
struct ContextOptions {
  bool traffic_prior_mean = false;
  bool uniform_proxy = false;
  // Pinned snapshot override: when set, traffic tensors come from this
  // cache instead of the model's construction-time default. The serving
  // layer passes the generation it pinned at admission (SnapshotStore), so
  // the whole query reads one immutable epoch no matter when swaps land.
  // Must share the model cache's grid. Null = model default.
  traffic::TrafficTensorCache* traffic_cache = nullptr;
  // What-if edit applied to a copy of each traffic tensor the query reads
  // (never to the pinned base). Null/empty = no edit. Ignored when
  // traffic_prior_mean substitutes the zero prior -- there is no observed
  // tensor to edit.
  const traffic::TrafficOverlay* overlay = nullptr;
};

// Loss diagnostics for one minibatch (per-trip averages).
struct LossStats {
  double total = 0.0;
  double route_ce = 0.0;      // negative route log-likelihood
  double dest_nll = 0.0;      // negative destination log-likelihood
  double kl_traffic = 0.0;
  double kl_proxy = 0.0;
  int num_transitions = 0;
};

// Latent/context terms fixed for a whole query, reused across the generation
// loop and across candidate routes in scoring.
struct PredictionContext {
  bool has_dest = false;
  nn::Tensor dest_term;  // [1, N_max] additive logit bias
  nn::Tensor dest_repr;  // [1, dest_dim] f_x = W pi, fed to the GRU input
  bool has_traffic = false;
  nn::Tensor traffic_term;  // [1, N_max]
  nn::Tensor traffic_repr;  // [1, traffic_dim] c
  geo::Point destination;
};

// -- Cross-query batching work items -------------------------------------------
// One prediction / scoring query inside a coalesced batch. The serve
// daemon's scheduler fills these from *different* clients and runs them
// through one padded batch on a single leased session; per item the result
// is bitwise identical to the corresponding single-query call (see
// core/infer/session.h for the kernel-level argument).
struct PredictItem {
  const PredictionContext* ctx = nullptr;
  roadnet::SegmentId origin = roadnet::kInvalidSegment;
  double deadline_ms = 0.0;  // per-item wall budget; 0 disables
  bool budget_hit = false;   // out: deadline returned best-so-far
  traj::Route route;         // out
};
struct ScoreItem {
  const PredictionContext* ctx = nullptr;
  const std::vector<traj::Route>* routes = nullptr;
  std::vector<double> scores;  // out; same conventions as ScoreRoutes
};

// DeepST (Section IV): a deep probabilistic generative model of routes,
//   P(r_{i+1} | r_{1:i}, x, c) = softmax(alpha^T h_i + beta^T W pi + gamma^T c)
// over the neighbor slots of r_i, trained by maximizing the ELBO of Eq. 7
// with reparameterized Gaussian traffic latents and Gumbel-Softmax proxy
// latents. Ablations via DeepSTConfig: use_traffic=false gives DeepST-C;
// destination_mode selects proxies (DeepST) / known final segment (CSSRNN)
// / none (vanilla RNN).
class DeepSTModel : public nn::Module {
 public:
  // `traffic_cache` provides the shared per-slot traffic tensors; required
  // when config.use_traffic, ignored otherwise. The cache must outlive the
  // model and must cover both training and query times.
  DeepSTModel(const roadnet::RoadNetwork& net, const DeepSTConfig& config,
              traffic::TrafficTensorCache* traffic_cache);
  ~DeepSTModel() override;

  // O(params) construction from a saved parameter snapshot: the model is
  // built under nn::ScopedDeferInit (storage allocated, no random draws --
  // random init over a 100k-segment city costs more than the copy that
  // immediately overwrites it), then `params` is applied by name. Fails if
  // any parameter is missing or shape-mismatched, so a half-initialized
  // model never escapes.
  static util::StatusOr<std::unique_ptr<DeepSTModel>> LoadFromParams(
      const roadnet::RoadNetwork& net, const DeepSTConfig& config,
      traffic::TrafficTensorCache* traffic_cache,
      const std::vector<nn::NamedTensor>& params);
  // Same, reading the snapshot from an nn::SaveParameters file.
  static util::StatusOr<std::unique_ptr<DeepSTModel>> LoadFromFile(
      const roadnet::RoadNetwork& net, const DeepSTConfig& config,
      traffic::TrafficTensorCache* traffic_cache, const std::string& path);

  // -- Training ---------------------------------------------------------------
  // Scalar ELBO-derived loss (mean per trip) for a minibatch; backward-able.
  // `training=false` switches to evaluation behavior: MAP latents instead of
  // samples and batch-norm running statistics (used for validation CE).
  nn::VarPtr Loss(const std::vector<const traj::Trip*>& batch, util::Rng* rng,
                  LossStats* stats = nullptr, bool training = true);

  // -- Prediction (Algorithm 2) -------------------------------------------------
  // Generation and scoring run on the graph-free inference engine
  // (core/infer) unless config.graph_inference selects the autodiff
  // reference path; the two agree within 1e-5 (docs/inference.md). All
  // prediction/scoring entry points are safe to call concurrently: each call
  // leases a scratch session from a mutex-guarded pool.
  PredictionContext MakeContext(const RouteQuery& query, util::Rng* rng);
  // Degraded-context variant: substitutes priors for the inputs flagged in
  // `options` (see ContextOptions) and computes the rest normally.
  PredictionContext MakeContext(const RouteQuery& query, util::Rng* rng,
                                const ContextOptions& options);
  // Most-likely-route generation: beam search of config.beam_width when
  // map_prediction (greedy when beam_width == 1), sampled per Algorithm 2
  // otherwise.
  traj::Route PredictRoute(const PredictionContext& ctx,
                           roadnet::SegmentId origin, util::Rng* rng);
  // Explicit beam-search variant. A positive `deadline_ms` caps wall time:
  // the search always completes at least one expansion step, checks the
  // clock between steps, and returns the best hypothesis so far when the
  // budget runs out (setting *budget_hit when provided).
  traj::Route PredictRouteBeam(const PredictionContext& ctx,
                               roadnet::SegmentId origin, util::Rng* rng,
                               double deadline_ms = 0.0,
                               bool* budget_hit = nullptr);
  traj::Route PredictRoute(const RouteQuery& query, util::Rng* rng);

  // -- Route likelihood score (Section IV-E) -------------------------------------
  // log prod_i P(r_{i+1} | r_{1:i}, W pi, c); -inf for non-contiguous routes.
  double ScoreRoute(const PredictionContext& ctx, const traj::Route& route);
  double ScoreRoute(const RouteQuery& query, const traj::Route& route,
                    util::Rng* rng);
  // Scores a whole candidate set as one padded batch (one GRU step per
  // position for all candidates at once). Bitwise identical to calling
  // ScoreRoute per route; routes shorter than 2 segments score 0,
  // non-contiguous ones -inf.
  std::vector<double> ScoreRoutes(const PredictionContext& ctx,
                                  const std::vector<traj::Route>& routes);
  // Log-likelihood of `continuation` given that `prefix` was already
  // traveled: the GRU state is warmed over the prefix (unscored), then the
  // continuation's transitions are scored. continuation.front() must equal
  // prefix.back() when the prefix is non-empty (route recovery scores gap
  // candidates this way, keeping DeepST's sequential memory in play).
  double ScoreContinuation(const PredictionContext& ctx,
                           const traj::Route& prefix,
                           const traj::Route& continuation);
  // Batched variant: warms the shared prefix once, then scores every
  // candidate continuation as one padded batch. Bitwise identical to
  // calling ScoreContinuation per candidate.
  std::vector<double> ScoreContinuations(
      const PredictionContext& ctx, const traj::Route& prefix,
      const std::vector<traj::Route>& candidates);

  // -- Cross-query batched entry points (serve scheduler) ------------------------
  // Run every item through ONE leased session as one padded batch when the
  // config permits lock-step batching (graph-free engine + deterministic MAP
  // beam for prediction); fall back to per-item single-query calls
  // otherwise. Either way each item's result is bitwise identical to the
  // corresponding single-query call. `rng` is only consulted on the
  // fallback path (sampled-stop configs); the batched path draws nothing.
  void PredictRoutesBeamMulti(std::vector<PredictItem>* items,
                              util::Rng* rng = nullptr);
  void ScoreRoutesMulti(std::vector<ScoreItem>* items);

  // -- Autodiff reference implementations ---------------------------------------
  // The original graph-building paths, kept as the specification the fast
  // path is parity-tested against (tests/inference_test.cc) and benchmarked
  // against (bench_micro --inference_sweep).
  traj::Route PredictRouteReference(const PredictionContext& ctx,
                                    roadnet::SegmentId origin,
                                    util::Rng* rng);
  traj::Route PredictRouteBeamReference(const PredictionContext& ctx,
                                        roadnet::SegmentId origin,
                                        util::Rng* rng,
                                        double deadline_ms = 0.0,
                                        bool* budget_hit = nullptr);
  double ScoreRouteReference(const PredictionContext& ctx,
                             const traj::Route& route);
  double ScoreContinuationReference(const PredictionContext& ctx,
                                    const traj::Route& prefix,
                                    const traj::Route& continuation);

  const DeepSTConfig& config() const { return config_; }
  const roadnet::RoadNetwork& network() const { return net_; }
  DestinationProxyModel* proxy_model() { return proxy_.get(); }
  // Traffic cache backing MakeContext (null when !config.use_traffic). The
  // serving layer reads its staleness signals to pick between live traffic
  // and the prior-mean fallback.
  traffic::TrafficTensorCache* traffic_cache() { return traffic_cache_; }

  // Raw-weight views consumed by the graph-free engine (core/infer).
  const nn::EmbeddingLayer& segment_embedding() const { return *segment_emb_; }
  const nn::StackedGru& gru() const { return *gru_; }
  const nn::LinearLayer& alpha_layer() const { return *alpha_; }

  // Weights packed once (at config.infer_precision) and shared read-only by
  // every pooled session; built lazily on the first session construction,
  // rebuilt after RetirePooledSessions. When config.gemm_blocking is set the
  // build also packs the K-major GEMM panel sidecars (forward.h), so batched
  // beam/scoring steps run the register-blocked kernels. Never null.
  std::shared_ptr<const infer::SharedInferWeights> shared_infer_weights()
      const;

  // Transition-distribution memo cache shared across the session pool; null
  // when config.memo_cache_capacity == 0. Hits replay kernel outputs
  // bitwise, so callers only observe it through speed and the counters.
  nn::infer::TransitionMemoCache* transition_memo() const {
    return memo_.get();
  }
  // Counter snapshot (zeros with epoch/capacity 0 when disabled); surfaced
  // through ServeMetrics and `deepst serve` stats.
  nn::infer::MemoStats transition_memo_stats() const;
  // Wholesale memo invalidation: call after mutating weights in place or
  // swapping the traffic snapshot wiring. O(1) epoch bump; queries already
  // in flight keep the epoch they pinned at context-preparation time.
  // RetirePooledSessions also invalidates (its contract is "scratch state
  // may be stale"), covering the serve watchdog path.
  void InvalidateTransitionCache();

  // Teacher-forced top-1 next-segment slots along `route`: feeds
  // route[0..t] and records argmax over the valid neighbor slots at each of
  // the route.size()-1 transitions. The quantization accuracy-parity
  // harness compares these across precisions (bench_micro, quant_test).
  std::vector<int> TopSlotsAlongRoute(const PredictionContext& ctx,
                                      const traj::Route& route);

  // Number of pooled inference sessions currently alive (test/debug hook;
  // grows up to the peak number of concurrent prediction calls).
  size_t num_pooled_sessions();

  // Retires the session pool: pooled sessions are destroyed now, and every
  // session currently leased out is dropped instead of re-pooled when its
  // lease ends. The serve watchdog calls this to recycle scratch state a
  // hung or fault-poisoned worker may have left behind, without touching
  // the threads themselves; subsequent calls build fresh sessions on demand.
  void RetirePooledSessions();
  // Sessions currently leased out (zero once a drain completes; the chaos
  // soak asserts no lease is ever leaked).
  int64_t outstanding_session_leases() const;

 private:
  // Next-slot logits [B, N_max] for the current hidden state plus context
  // terms.
  nn::VarPtr StepLogits(const nn::VarPtr& h, const nn::VarPtr& dest_term,
                        const nn::VarPtr& traffic_term) const;
  // Builds the per-trip context for a batch; appends ELBO pieces (KLs,
  // destination log-lik) to `extra_loss_terms`.
  //
  // Implementation note (deviation from the paper's Eq. in IV-A, documented
  // in DESIGN.md): besides the additive logit biases beta^T W pi and
  // gamma^T c, the representations W pi and c are concatenated to the GRU
  // input at every step. A purely additive slot bias that is constant across
  // steps cannot condition the *direction* of the next transition on the
  // destination -- slot semantics change with the current segment -- so the
  // interaction pathway has to reach the recurrent state; CSSRNN [7] does
  // the same.
  struct BatchContext {
    nn::VarPtr dest_term;     // [B, N_max] logit bias; null if unused
    nn::VarPtr dest_repr;     // [B, dest_dim]; null if unused
    nn::VarPtr traffic_term;  // [B, N_max]; null if unused
    nn::VarPtr traffic_repr;  // [B, traffic_dim]; null if unused
  };
  // `traffic_cache` overrides the construction-time cache (pinned snapshot
  // serving); `overlay` applies a what-if edit to a copy of each unique
  // traffic tensor. Training passes neither.
  BatchContext MakeBatchContext(const std::vector<const traj::Trip*>& batch,
                                util::Rng* rng, bool training,
                                std::vector<nn::VarPtr>* extra_loss_terms,
                                LossStats* stats,
                                traffic::TrafficTensorCache* traffic_cache =
                                    nullptr,
                                const traffic::TrafficOverlay* overlay =
                                    nullptr);
  // MakeContext body parameterized on the snapshot source and overlay; the
  // public overloads delegate here.
  PredictionContext MakeContextImpl(const RouteQuery& query, util::Rng* rng,
                                    traffic::TrafficTensorCache* traffic_cache,
                                    const traffic::TrafficOverlay* overlay);

  // Lease management for the graph-free engine: every prediction/scoring
  // call takes a session exclusively (sessions own scratch state), returning
  // it when done so the buffers stay warm for the next call.
  std::unique_ptr<infer::InferenceSession> AcquireSession();
  // Returns a session to the pool -- unless the pool generation advanced
  // since `generation` (RetirePooledSessions ran while it was leased), in
  // which case the stale session is destroyed instead.
  void ReleaseSession(std::unique_ptr<infer::InferenceSession> session,
                      uint64_t generation);
  class SessionLease;

  const roadnet::RoadNetwork& net_;
  DeepSTConfig config_;
  traffic::TrafficTensorCache* traffic_cache_;
  util::Rng init_rng_;

  std::unique_ptr<nn::EmbeddingLayer> segment_emb_;
  std::unique_ptr<nn::StackedGru> gru_;
  std::unique_ptr<nn::LinearLayer> alpha_;  // H -> N_max
  std::unique_ptr<nn::LinearLayer> beta_;   // dest_dim -> N_max
  std::unique_ptr<nn::LinearLayer> gamma_;  // traffic_dim -> N_max
  std::unique_ptr<DestinationProxyModel> proxy_;
  std::unique_ptr<nn::EmbeddingLayer> final_segment_emb_;  // CSSRNN mode
  std::unique_ptr<TrafficEncoder> traffic_encoder_;

  std::mutex session_mu_;
  std::vector<std::unique_ptr<infer::InferenceSession>> session_pool_;
  std::atomic<uint64_t> session_generation_{0};
  std::atomic<int64_t> outstanding_leases_{0};
  // Lazily-built packed weights shared by pooled sessions (see
  // shared_infer_weights()); reset on RetirePooledSessions so rebuilt
  // sessions repack from the current float parameters.
  mutable std::mutex weights_mu_;
  mutable std::shared_ptr<const infer::SharedInferWeights> shared_weights_;
  std::unique_ptr<nn::infer::TransitionMemoCache> memo_;
};

// Log-probability of transitioning into neighbor slot `slot`, normalized
// over the *valid* neighbor slots of the current segment only. Training uses
// the unmasked N_max-way softmax (the paper's choice), but likelihood
// scoring and generation both restrict to true neighbors (Algorithm 2 draws
// from the adjacent road segments), so the measure must renormalize
// accordingly -- otherwise mass leaked onto invalid slots (which varies with
// out-degree) biases cross-route comparisons. Shared by the autodiff
// reference path and the graph-free engine so both normalize identically.
double ValidSlotLogProb(const float* logits_row, int num_valid, int slot);

// Shared stop rule of the generative process: the paper's
// f_s(r, x) = 1 / (1 + ||p(x, r) - x||_2) Bernoulli parameter (distance in
// km). Deterministic mode stops once the projection distance drops below
// config.stop_distance_m.
bool ShouldStop(const roadnet::RoadNetwork& net, const geo::Point& dest,
                roadnet::SegmentId segment, const DeepSTConfig& config,
                util::Rng* rng);

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_DEEPST_MODEL_H_
