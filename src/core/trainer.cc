#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "nn/backend.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {
namespace {

// Trips sorted by route length, then chunked -- batches have homogeneous
// lengths so padding is cheap.
std::vector<std::vector<const traj::Trip*>> MakeBatches(
    const std::vector<const traj::TripRecord*>& data, int batch_size,
    util::Rng* rng) {
  std::vector<const traj::Trip*> trips;
  trips.reserve(data.size());
  for (const auto* rec : data) {
    if (rec->trip.route.size() >= 2) trips.push_back(&rec->trip);
  }
  std::stable_sort(trips.begin(), trips.end(),
                   [](const traj::Trip* a, const traj::Trip* b) {
                     return a->route.size() < b->route.size();
                   });
  std::vector<std::vector<const traj::Trip*>> batches;
  for (size_t i = 0; i < trips.size(); i += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(trips.size(), i + static_cast<size_t>(batch_size));
    batches.emplace_back(trips.begin() + static_cast<long>(i),
                         trips.begin() + static_cast<long>(end));
  }
  if (rng != nullptr) rng->Shuffle(&batches);
  return batches;
}

}  // namespace

Trainer::Trainer(DeepSTModel* model, const TrainerConfig& config)
    : model_(model), config_(config) {
  DEEPST_CHECK(model != nullptr);
}

TrainResult Trainer::Fit(
    const std::vector<const traj::TripRecord*>& train,
    const std::vector<const traj::TripRecord*>& validation) {
  DEEPST_CHECK(!train.empty());
  if (config_.num_threads > 0) nn::SetBackendThreads(config_.num_threads);
  util::Rng rng(config_.seed);
  nn::Adam optimizer(model_->Parameters(), config_.learning_rate);

  // Trips with fewer than two segments have no transition to predict and are
  // dropped by MakeBatches; if nothing survives, there is no epoch to run.
  int64_t eligible = 0;
  for (const auto* rec : train) {
    if (rec->trip.route.size() >= 2) ++eligible;
  }
  if (eligible == 0) {
    DEEPST_LOG(Warning)
        << "no trainable trips (every route has < 2 segments); skipping fit";
    return TrainResult{};
  }

  TrainResult result;
  util::Stopwatch total_watch;
  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    util::Stopwatch epoch_watch;
    auto batches = MakeBatches(train, config_.batch_size, &rng);
    double loss_sum = 0.0;
    double ce_sum = 0.0;
    int64_t transitions = 0;
    int64_t trips = 0;
    for (const auto& batch : batches) {
      optimizer.ZeroGrad();
      LossStats stats;
      nn::VarPtr loss = model_->Loss(batch, &rng, &stats);
      nn::Backward(loss);
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      loss_sum += stats.total * static_cast<double>(batch.size());
      ce_sum += stats.route_ce * static_cast<double>(batch.size());
      transitions += stats.num_transitions;
      trips += static_cast<int64_t>(batch.size());
    }

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = loss_sum / static_cast<double>(trips);
    // ce_sum accumulated per-trip route CE; renormalize per transition.
    es.train_route_ce =
        ce_sum / std::max<double>(1.0, static_cast<double>(transitions));
    es.val_route_ce =
        validation.empty() ? 0.0 : EvaluateRouteCe(validation);
    es.seconds = epoch_watch.ElapsedSeconds();
    result.epochs.push_back(es);
    if (config_.verbose) {
      DEEPST_LOG(Info) << "epoch " << epoch << " train_loss "
                       << es.train_loss << " train_ce/step "
                       << es.train_route_ce << " val_ce/step "
                       << es.val_route_ce << " (" << es.seconds << "s)";
    }

    const double val_metric =
        validation.empty() ? es.train_route_ce : es.val_route_ce;
    if (val_metric < best_val - 1e-4) {
      best_val = val_metric;
      result.best_epoch = epoch;
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      if (config_.verbose) {
        DEEPST_LOG(Info) << "early stopping at epoch " << epoch;
      }
      break;
    }
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

double Trainer::EvaluateRouteCe(
    const std::vector<const traj::TripRecord*>& data) {
  if (data.empty()) return 0.0;
  if (config_.num_threads > 0) nn::SetBackendThreads(config_.num_threads);
  auto batches = MakeBatches(data, config_.batch_size, nullptr);
  if (batches.empty()) return 0.0;
  // Batches are independent forward passes (MAP latents, batch-norm running
  // stats; the graph is built but never backwarded), so they fan out over the
  // backend. Each batch gets its own rng stream derived statelessly from its
  // index, so the draws -- and thus the CE -- are the same for every thread
  // count; under the default map_prediction config evaluation consumes no
  // randomness at all.
  const uint64_t eval_seed = config_.seed ^ 0xe4a1ULL;
  const int64_t nbatches = static_cast<int64_t>(batches.size());
  std::vector<double> ce(batches.size(), 0.0);
  std::vector<int64_t> transitions(batches.size(), 0);
  nn::GetBackend()->Run(nbatches, [&](int64_t i) {
    util::Rng rng(eval_seed ^
                  (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1)));
    LossStats stats;
    nn::VarPtr loss = model_->Loss(batches[static_cast<size_t>(i)], &rng,
                                   &stats, /*training=*/false);
    (void)loss;
    ce[static_cast<size_t>(i)] =
        stats.route_ce * static_cast<double>(batches[static_cast<size_t>(i)].size());
    transitions[static_cast<size_t>(i)] = stats.num_transitions;
  });
  // Combine in batch order: the sum is independent of task scheduling.
  double ce_sum = 0.0;
  int64_t total_transitions = 0;
  for (int64_t i = 0; i < nbatches; ++i) {
    ce_sum += ce[static_cast<size_t>(i)];
    total_transitions += transitions[static_cast<size_t>(i)];
  }
  return ce_sum / std::max<double>(1.0, static_cast<double>(total_transitions));
}

}  // namespace core
}  // namespace deepst
