#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "core/checkpoint.h"
#include "nn/backend.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {
namespace {

// Trips sorted by route length, then chunked -- batches have homogeneous
// lengths so padding is cheap.
std::vector<std::vector<const traj::Trip*>> MakeBatches(
    const std::vector<const traj::TripRecord*>& data, int batch_size,
    util::Rng* rng) {
  std::vector<const traj::Trip*> trips;
  trips.reserve(data.size());
  for (const auto* rec : data) {
    if (rec->trip.route.size() >= 2) trips.push_back(&rec->trip);
  }
  std::stable_sort(trips.begin(), trips.end(),
                   [](const traj::Trip* a, const traj::Trip* b) {
                     return a->route.size() < b->route.size();
                   });
  std::vector<std::vector<const traj::Trip*>> batches;
  for (size_t i = 0; i < trips.size(); i += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(trips.size(), i + static_cast<size_t>(batch_size));
    batches.emplace_back(trips.begin() + static_cast<long>(i),
                         trips.begin() + static_cast<long>(end));
  }
  if (rng != nullptr) rng->Shuffle(&batches);
  return batches;
}

bool AllParamsFinite(const DeepSTModel& model) {
  for (const auto& p : model.Parameters()) {
    if (!p.var->value().AllFinite()) return false;
  }
  return true;
}

}  // namespace

Trainer::Trainer(DeepSTModel* model, const TrainerConfig& config)
    : model_(model), config_(config) {
  DEEPST_CHECK(model != nullptr);
}

TrainResult Trainer::Fit(
    const std::vector<const traj::TripRecord*>& train,
    const std::vector<const traj::TripRecord*>& validation) {
  DEEPST_CHECK(!train.empty());
  if (config_.num_threads > 0) nn::SetBackendThreads(config_.num_threads);
  util::Rng rng(config_.seed);
  nn::Adam optimizer(model_->Parameters(), config_.learning_rate);

  // Trips with fewer than two segments have no transition to predict and are
  // dropped by MakeBatches; if nothing survives, there is no epoch to run.
  int64_t eligible = 0;
  for (const auto* rec : train) {
    if (rec->trip.route.size() >= 2) ++eligible;
  }
  if (eligible == 0) {
    DEEPST_LOG(Warning)
        << "no trainable trips (every route has < 2 segments); skipping fit";
    return TrainResult{};
  }

  TrainResult result;
  util::Stopwatch total_watch;
  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;
  int retries_used = 0;
  int epoch = 0;
  std::vector<nn::NamedTensor> best_params;
  std::vector<nn::NamedTensor> best_buffers;

  std::unique_ptr<CheckpointManager> ckpts;
  if (!config_.checkpoint_dir.empty()) {
    ckpts = std::make_unique<CheckpointManager>(config_.checkpoint_dir);
  }
  const int every = config_.checkpoint_every <= 0 ? 1 : config_.checkpoint_every;

  // Freezes the full training state as of the start of epoch `next_epoch`.
  // The same snapshot serves the on-disk checkpoints and the in-memory
  // divergence rollback.
  auto snapshot = [&](int next_epoch) {
    TrainingCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.best_epoch = result.best_epoch;
    ckpt.best_val = best_val;
    ckpt.since_best = since_best;
    ckpt.retries_used = retries_used;
    ckpt.rng = rng.GetState();
    ckpt.history = result.epochs;
    ckpt.optimizer = optimizer.ExportState();
    ckpt.params = nn::SnapshotParameters(*model_);
    ckpt.best_params = best_params;
    ckpt.buffers = nn::SnapshotBuffers(*model_);
    ckpt.best_buffers = best_buffers;
    return ckpt;
  };
  auto restore = [&](const TrainingCheckpoint& ckpt) -> util::Status {
    DEEPST_RETURN_IF_ERROR(nn::ApplyNamedTensors(model_, ckpt.params));
    DEEPST_RETURN_IF_ERROR(nn::ApplyNamedBuffers(model_, ckpt.buffers));
    DEEPST_RETURN_IF_ERROR(optimizer.ImportState(ckpt.optimizer));
    rng.SetState(ckpt.rng);
    result.epochs = ckpt.history;
    result.best_epoch = static_cast<int>(ckpt.best_epoch);
    best_val = ckpt.best_val;
    since_best = static_cast<int>(ckpt.since_best);
    retries_used = static_cast<int>(ckpt.retries_used);
    best_params = ckpt.best_params;
    best_buffers = ckpt.best_buffers;
    epoch = static_cast<int>(ckpt.next_epoch);
    return util::Status::Ok();
  };

  if (config_.resume && ckpts != nullptr) {
    std::string path;
    auto loaded = ckpts->LoadLatestGood(&path);
    if (loaded.ok()) {
      util::Status s = restore(loaded.value());
      if (!s.ok()) {
        // A checkpoint for a different model/optimizer: fail instead of
        // silently retraining from scratch over the operator's run.
        result.status = s;
        return result;
      }
      result.start_epoch = epoch;
      if (config_.verbose) {
        DEEPST_LOG(Info) << "resumed from " << path << " at epoch " << epoch;
      }
    } else if (config_.verbose) {
      DEEPST_LOG(Info) << "no usable checkpoint ("
                       << loaded.status().message()
                       << "); training from scratch";
    }
  }

  TrainingCheckpoint last_good = snapshot(epoch);

  bool stop_early = false;
  while (epoch < config_.max_epochs && !stop_early) {
    util::Stopwatch epoch_watch;
    auto batches = MakeBatches(train, config_.batch_size, &rng);
    double loss_sum = 0.0;
    double ce_sum = 0.0;
    int64_t transitions = 0;
    int64_t trips = 0;
    for (const auto& batch : batches) {
      optimizer.ZeroGrad();
      LossStats stats;
      nn::VarPtr loss = model_->Loss(batch, &rng, &stats);
      nn::Backward(loss);
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      loss_sum += stats.total * static_cast<double>(batch.size());
      ce_sum += stats.route_ce * static_cast<double>(batch.size());
      transitions += stats.num_transitions;
      trips += static_cast<int64_t>(batch.size());
    }

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = loss_sum / static_cast<double>(trips);
    // ce_sum accumulated per-trip route CE; renormalize per transition.
    es.train_route_ce =
        ce_sum / std::max<double>(1.0, static_cast<double>(transitions));

    // Divergence guard: non-finite loss/params or a loss spike rolls the run
    // back to the last good epoch boundary and retries with a smaller step.
    double guard_loss = es.train_loss;
    if (config_.divergence_loss_hook) {
      guard_loss =
          config_.divergence_loss_hook(epoch, retries_used, es.train_loss);
    }
    const double prev_loss =
        result.epochs.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : result.epochs.back().train_loss;
    bool diverged = !std::isfinite(guard_loss);
    if (!diverged && std::isfinite(prev_loss)) {
      diverged = guard_loss - prev_loss >
                 config_.divergence_spike_factor *
                     std::max(1.0, std::abs(prev_loss));
    }
    if (!diverged) diverged = !AllParamsFinite(*model_);
    if (diverged) {
      if (retries_used >= config_.divergence_max_retries) {
        (void)restore(last_good);
        result.status = util::Status::Internal(
            "training diverged at epoch " + std::to_string(es.epoch) +
            " after " + std::to_string(retries_used) +
            " rollback retries; model left at last good epoch boundary");
        DEEPST_LOG(Warning) << result.status.ToString();
        break;
      }
      const int retries_after = retries_used + 1;
      (void)restore(last_good);
      retries_used = retries_after;
      const float backed_off = optimizer.lr() * config_.divergence_lr_backoff;
      optimizer.set_lr(backed_off);
      // Future rollbacks must resurrect the reduced rate, not the original.
      last_good.retries_used = retries_after;
      last_good.optimizer.lr = backed_off;
      DEEPST_LOG(Warning) << "divergence at epoch " << es.epoch
                          << " (loss " << guard_loss
                          << "); rolled back, lr -> " << backed_off
                          << " (retry " << retries_after << "/"
                          << config_.divergence_max_retries << ")";
      continue;
    }

    es.val_route_ce =
        validation.empty() ? 0.0 : EvaluateRouteCe(validation);
    es.seconds = epoch_watch.ElapsedSeconds();
    result.epochs.push_back(es);
    if (config_.verbose) {
      DEEPST_LOG(Info) << "epoch " << epoch << " train_loss "
                       << es.train_loss << " train_ce/step "
                       << es.train_route_ce << " val_ce/step "
                       << es.val_route_ce << " (" << es.seconds << "s)";
    }

    const double val_metric =
        validation.empty() ? es.train_route_ce : es.val_route_ce;
    bool improved = false;
    if (val_metric < best_val - 1e-4) {
      best_val = val_metric;
      result.best_epoch = epoch;
      since_best = 0;
      best_params = nn::SnapshotParameters(*model_);
      best_buffers = nn::SnapshotBuffers(*model_);
      improved = true;
    } else if (++since_best >= config_.patience) {
      if (config_.verbose) {
        DEEPST_LOG(Info) << "early stopping at epoch " << epoch;
      }
      stop_early = true;
    }

    ++epoch;
    last_good = snapshot(epoch);
    if (ckpts != nullptr) {
      if (epoch % every == 0 || stop_early || epoch >= config_.max_epochs) {
        util::Status s = ckpts->WriteLatest(last_good);
        if (!s.ok()) {
          DEEPST_LOG(Warning) << "checkpoint write failed: " << s.ToString();
        }
      }
      if (improved) {
        util::Status s = ckpts->WriteBest(last_good);
        if (!s.ok()) {
          DEEPST_LOG(Warning) << "best-checkpoint write failed: "
                              << s.ToString();
        }
      }
    }
  }

  // Leave the model at the best-validation epoch's weights. Early stopping
  // runs `patience` epochs past the optimum, and even a full run rarely ends
  // on its best epoch, so returning the last epoch's weights (the old
  // behavior) silently shipped a worse model.
  if (!best_params.empty()) {
    (void)nn::ApplyNamedTensors(model_, best_params);
    (void)nn::ApplyNamedBuffers(model_, best_buffers);
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

double Trainer::EvaluateRouteCe(
    const std::vector<const traj::TripRecord*>& data) {
  if (data.empty()) return 0.0;
  if (config_.num_threads > 0) nn::SetBackendThreads(config_.num_threads);
  auto batches = MakeBatches(data, config_.batch_size, nullptr);
  if (batches.empty()) return 0.0;
  // Batches are independent forward passes (MAP latents, batch-norm running
  // stats; the graph is built but never backwarded), so they fan out over the
  // backend. Each batch gets its own rng stream derived statelessly from its
  // index, so the draws -- and thus the CE -- are the same for every thread
  // count; under the default map_prediction config evaluation consumes no
  // randomness at all.
  const uint64_t eval_seed = config_.seed ^ 0xe4a1ULL;
  const int64_t nbatches = static_cast<int64_t>(batches.size());
  std::vector<double> ce(batches.size(), 0.0);
  std::vector<int64_t> transitions(batches.size(), 0);
  nn::GetBackend()->Run(nbatches, [&](int64_t i) {
    util::Rng rng(eval_seed ^
                  (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1)));
    LossStats stats;
    nn::VarPtr loss = model_->Loss(batches[static_cast<size_t>(i)], &rng,
                                   &stats, /*training=*/false);
    (void)loss;
    ce[static_cast<size_t>(i)] =
        stats.route_ce * static_cast<double>(batches[static_cast<size_t>(i)].size());
    transitions[static_cast<size_t>(i)] = stats.num_transitions;
  });
  // Combine in batch order: the sum is independent of task scheduling.
  double ce_sum = 0.0;
  int64_t total_transitions = 0;
  for (int64_t i = 0; i < nbatches; ++i) {
    ce_sum += ce[static_cast<size_t>(i)];
    total_transitions += transitions[static_cast<size_t>(i)];
  }
  return ce_sum / std::max<double>(1.0, static_cast<double>(total_transitions));
}

}  // namespace core
}  // namespace deepst
