#include "core/trainer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {
namespace {

// Trips sorted by route length, then chunked -- batches have homogeneous
// lengths so padding is cheap.
std::vector<std::vector<const traj::Trip*>> MakeBatches(
    const std::vector<const traj::TripRecord*>& data, int batch_size,
    util::Rng* rng) {
  std::vector<const traj::Trip*> trips;
  trips.reserve(data.size());
  for (const auto* rec : data) {
    if (rec->trip.route.size() >= 2) trips.push_back(&rec->trip);
  }
  std::stable_sort(trips.begin(), trips.end(),
                   [](const traj::Trip* a, const traj::Trip* b) {
                     return a->route.size() < b->route.size();
                   });
  std::vector<std::vector<const traj::Trip*>> batches;
  for (size_t i = 0; i < trips.size(); i += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(trips.size(), i + static_cast<size_t>(batch_size));
    batches.emplace_back(trips.begin() + static_cast<long>(i),
                         trips.begin() + static_cast<long>(end));
  }
  if (rng != nullptr) rng->Shuffle(&batches);
  return batches;
}

}  // namespace

Trainer::Trainer(DeepSTModel* model, const TrainerConfig& config)
    : model_(model), config_(config) {
  DEEPST_CHECK(model != nullptr);
}

TrainResult Trainer::Fit(
    const std::vector<const traj::TripRecord*>& train,
    const std::vector<const traj::TripRecord*>& validation) {
  DEEPST_CHECK(!train.empty());
  util::Rng rng(config_.seed);
  nn::Adam optimizer(model_->Parameters(), config_.learning_rate);

  TrainResult result;
  util::Stopwatch total_watch;
  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    util::Stopwatch epoch_watch;
    auto batches = MakeBatches(train, config_.batch_size, &rng);
    double loss_sum = 0.0;
    double ce_sum = 0.0;
    int64_t transitions = 0;
    int64_t trips = 0;
    for (const auto& batch : batches) {
      optimizer.ZeroGrad();
      LossStats stats;
      nn::VarPtr loss = model_->Loss(batch, &rng, &stats);
      nn::Backward(loss);
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      loss_sum += stats.total * static_cast<double>(batch.size());
      ce_sum += stats.route_ce * static_cast<double>(batch.size());
      transitions += stats.num_transitions;
      trips += static_cast<int64_t>(batch.size());
    }

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = loss_sum / static_cast<double>(trips);
    // ce_sum accumulated per-trip route CE; renormalize per transition.
    es.train_route_ce =
        ce_sum / std::max<double>(1.0, static_cast<double>(transitions));
    es.val_route_ce =
        validation.empty() ? 0.0 : EvaluateRouteCe(validation);
    es.seconds = epoch_watch.ElapsedSeconds();
    result.epochs.push_back(es);
    if (config_.verbose) {
      DEEPST_LOG(Info) << "epoch " << epoch << " train_loss "
                       << es.train_loss << " train_ce/step "
                       << es.train_route_ce << " val_ce/step "
                       << es.val_route_ce << " (" << es.seconds << "s)";
    }

    const double val_metric =
        validation.empty() ? es.train_route_ce : es.val_route_ce;
    if (val_metric < best_val - 1e-4) {
      best_val = val_metric;
      result.best_epoch = epoch;
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      if (config_.verbose) {
        DEEPST_LOG(Info) << "early stopping at epoch " << epoch;
      }
      break;
    }
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

double Trainer::EvaluateRouteCe(
    const std::vector<const traj::TripRecord*>& data) {
  if (data.empty()) return 0.0;
  util::Rng rng(config_.seed ^ 0xe4a1ULL);
  auto batches = MakeBatches(data, config_.batch_size, nullptr);
  double ce_sum = 0.0;
  int64_t transitions = 0;
  for (const auto& batch : batches) {
    LossStats stats;
    // Forward-only evaluation pass (MAP latents, batch-norm running stats);
    // the graph is built but never backwarded.
    nn::VarPtr loss = model_->Loss(batch, &rng, &stats, /*training=*/false);
    (void)loss;
    ce_sum += stats.route_ce * static_cast<double>(batch.size());
    transitions += stats.num_transitions;
  }
  return ce_sum / std::max<double>(1.0, static_cast<double>(transitions));
}

}  // namespace core
}  // namespace deepst
