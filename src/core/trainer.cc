#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>

#include "core/checkpoint.h"
#include "nn/arena.h"
#include "nn/backend.h"
#include "nn/conv_ops.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {
namespace {

// Trips sorted by route length, then chunked -- batches have homogeneous
// lengths so padding is cheap. Built once per dataset; per-epoch shuffling
// permutes only the batch visit order (see Fit).
std::vector<std::vector<const traj::Trip*>> MakeBatches(
    const std::vector<const traj::TripRecord*>& data, int batch_size) {
  // Trips with fewer than two segments have no transition to predict.
  std::vector<const traj::Trip*> trips;
  trips.reserve(data.size());
  for (const auto* rec : data) {
    if (rec->trip.route.size() >= 2) trips.push_back(&rec->trip);
  }
  std::stable_sort(trips.begin(), trips.end(),
                   [](const traj::Trip* a, const traj::Trip* b) {
                     return a->route.size() < b->route.size();
                   });
  std::vector<std::vector<const traj::Trip*>> batches;
  for (size_t i = 0; i < trips.size(); i += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(trips.size(), i + static_cast<size_t>(batch_size));
    batches.emplace_back(trips.begin() + static_cast<long>(i),
                         trips.begin() + static_cast<long>(end));
  }
  return batches;
}

bool AllParamsFinite(const DeepSTModel& model) {
  for (const auto& p : model.Parameters()) {
    if (!p.var->value().AllFinite()) return false;
  }
  return true;
}

// Deterministic per-shard rng sub-stream: a pure function of the batch seed
// and the shard index (same derivation idiom as EvaluateRouteCe's per-batch
// streams), so sampling is independent of which thread runs the shard.
uint64_t ShardSeed(uint64_t batch_seed, int64_t shard) {
  return batch_seed ^
         (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(shard) + 1));
}

}  // namespace

// Data-parallel batch engine. RunBatch splits the minibatch into fixed
// micro-shards, fans forward+backward out over the backend's workers, and
// reduces per-shard gradients into the parameters in ascending shard order
// (nn::AccumulateShardGrads), so the accumulated gradient — and with it the
// whole training trajectory — is bitwise identical for every thread count.
//
// Every resource is per shard *slot*, not per thread: shard s of every batch
// reuses slot s's arena, gradient sink and batch-norm log no matter which
// worker runs it, which keeps the recycling pools closed (a tensor leased
// from slot s's arena is always returned to it) and the steady state
// allocation-free once shapes are warm.
class Trainer::ShardEngine {
 public:
  ShardEngine(DeepSTModel* model, int shard_size)
      : model_(model), shard_size_(shard_size) {
    DEEPST_CHECK_GT(shard_size_, 0);
    nn::BindParamSlots(model_->Parameters());
  }

  // Accumulates the batch-mean gradient into the model's parameter grads
  // (+=; callers zero beforehand) and returns the batch's loss stats,
  // combined in shard order.
  LossStats RunBatch(const std::vector<const traj::Trip*>& batch,
                     uint64_t batch_seed) {
    const int64_t bsz = static_cast<int64_t>(batch.size());
    DEEPST_CHECK_GT(bsz, 0);
    const int64_t nshards = (bsz + shard_size_ - 1) / shard_size_;
    while (static_cast<int64_t>(slots_.size()) < nshards) {
      slots_.push_back(std::make_unique<ShardSlot>());
    }
    const size_t nparams = model_->Parameters().size();

    nn::GetBackend()->Run(nshards, [&](int64_t s) {
      ShardSlot& slot = *slots_[static_cast<size_t>(s)];
      const int64_t begin = s * shard_size_;
      const int64_t end = std::min<int64_t>(bsz, begin + shard_size_);
      slot.trips.assign(batch.begin() + begin, batch.begin() + end);
      slot.grads.Bind(nparams);
      slot.grads.Begin();
      slot.bn_log.Clear();
      util::Rng rng(ShardSeed(batch_seed, s));
      // Activate the slot's sinks on whichever thread runs this shard: ops
      // lease graph nodes and tensor storage from the arena, parameter
      // grad() calls land in the private shard sink, and batch-norm
      // running-stat updates are logged for ordered replay.
      nn::ScopedAutodiffArena arena_scope(&slot.arena);
      nn::ScopedGradShard grad_scope(&slot.grads);
      nn::ops::ScopedBnStatsLog bn_scope(&slot.bn_log);
      slot.arena.BeginStep();
      LossStats stats;
      nn::VarPtr loss = model_->Loss(slot.trips, &rng, &stats,
                                     /*training=*/true);
      // Loss is the mean over the shard's trips; seeding backward with
      // (shard size / batch size) makes the shard gradients sum exactly to
      // the batch-mean gradient.
      nn::Backward(loss, static_cast<float>(end - begin) /
                             static_cast<float>(bsz));
      slot.stats = stats;
    });

    // Deterministic reduction: ascending shard order throughout.
    shard_ptrs_.clear();
    for (int64_t s = 0; s < nshards; ++s) {
      shard_ptrs_.push_back(&slots_[static_cast<size_t>(s)]->grads);
    }
    nn::AccumulateShardGrads(model_->Parameters(), shard_ptrs_);
    LossStats total;
    for (int64_t s = 0; s < nshards; ++s) {
      const ShardSlot& slot = *slots_[static_cast<size_t>(s)];
      slot.bn_log.Apply();
      const double w = static_cast<double>(slot.trips.size()) /
                       static_cast<double>(bsz);
      total.total += slot.stats.total * w;
      total.route_ce += slot.stats.route_ce * w;
      total.dest_nll += slot.stats.dest_nll * w;
      total.kl_traffic += slot.stats.kl_traffic * w;
      total.kl_proxy += slot.stats.kl_proxy * w;
      total.num_transitions += slot.stats.num_transitions;
    }
    return total;
  }

  Trainer::ArenaCounters counters() const {
    Trainer::ArenaCounters c;
    for (const auto& slot : slots_) {
      c.buffer_misses += slot->arena.buffer_miss_count();
      c.node_growths += slot->arena.node_grow_count();
    }
    return c;
  }

 private:
  struct ShardSlot {
    nn::AutodiffArena arena;
    nn::GradShard grads;
    nn::ops::BnStatsLog bn_log;
    std::vector<const traj::Trip*> trips;
    LossStats stats;
  };

  DeepSTModel* model_;
  int shard_size_;
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  std::vector<const nn::GradShard*> shard_ptrs_;
};

Trainer::Trainer(DeepSTModel* model, const TrainerConfig& config)
    : model_(model), config_(config) {
  DEEPST_CHECK(model != nullptr);
}

Trainer::~Trainer() = default;

Trainer::ShardEngine* Trainer::engine() {
  if (engine_ == nullptr) {
    engine_ = std::make_unique<ShardEngine>(model_, config_.micro_shard_size);
  }
  return engine_.get();
}

Trainer::ArenaCounters Trainer::arena_counters() const {
  return engine_ == nullptr ? ArenaCounters{} : engine_->counters();
}

LossStats Trainer::ComputeBatchGradients(
    const std::vector<const traj::Trip*>& batch, uint64_t batch_seed) {
  model_->ZeroGrad();
  if (config_.micro_shard_size > 0) {
    return engine()->RunBatch(batch, batch_seed);
  }
  util::Rng rng(batch_seed);
  LossStats stats;
  nn::VarPtr loss = model_->Loss(batch, &rng, &stats);
  nn::Backward(loss);
  return stats;
}

TrainResult Trainer::Fit(
    const std::vector<const traj::TripRecord*>& train,
    const std::vector<const traj::TripRecord*>& validation) {
  DEEPST_CHECK(!train.empty());
  nn::ScopedBackendThreads scoped_threads(config_.num_threads);
  util::Rng rng(config_.seed);
  nn::Adam optimizer(model_->Parameters(), config_.learning_rate);

  // Sort/bucket once; epochs only permute the visit order below.
  const auto batches = MakeBatches(train, config_.batch_size);
  if (batches.empty()) {
    DEEPST_LOG(Warning)
        << "no trainable trips (every route has < 2 segments); skipping fit";
    return TrainResult{};
  }
  std::vector<size_t> batch_order(batches.size());
  const bool sharded = config_.micro_shard_size > 0;

  TrainResult result;
  util::Stopwatch total_watch;
  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;
  int retries_used = 0;
  int epoch = 0;
  std::vector<nn::NamedTensor> best_params;
  std::vector<nn::NamedTensor> best_buffers;

  std::unique_ptr<CheckpointManager> ckpts;
  if (!config_.checkpoint_dir.empty()) {
    ckpts = std::make_unique<CheckpointManager>(config_.checkpoint_dir);
  }
  const int every = config_.checkpoint_every <= 0 ? 1 : config_.checkpoint_every;

  // Freezes the full training state as of the start of epoch `next_epoch`.
  // The same snapshot serves the on-disk checkpoints and the in-memory
  // divergence rollback.
  auto snapshot = [&](int next_epoch) {
    TrainingCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.best_epoch = result.best_epoch;
    ckpt.best_val = best_val;
    ckpt.since_best = since_best;
    ckpt.retries_used = retries_used;
    ckpt.rng = rng.GetState();
    ckpt.history = result.epochs;
    ckpt.optimizer = optimizer.ExportState();
    ckpt.params = nn::SnapshotParameters(*model_);
    ckpt.best_params = best_params;
    ckpt.buffers = nn::SnapshotBuffers(*model_);
    ckpt.best_buffers = best_buffers;
    return ckpt;
  };
  auto restore = [&](const TrainingCheckpoint& ckpt) -> util::Status {
    DEEPST_RETURN_IF_ERROR(nn::ApplyNamedTensors(model_, ckpt.params));
    DEEPST_RETURN_IF_ERROR(nn::ApplyNamedBuffers(model_, ckpt.buffers));
    DEEPST_RETURN_IF_ERROR(optimizer.ImportState(ckpt.optimizer));
    rng.SetState(ckpt.rng);
    result.epochs = ckpt.history;
    result.best_epoch = static_cast<int>(ckpt.best_epoch);
    best_val = ckpt.best_val;
    since_best = static_cast<int>(ckpt.since_best);
    retries_used = static_cast<int>(ckpt.retries_used);
    best_params = ckpt.best_params;
    best_buffers = ckpt.best_buffers;
    epoch = static_cast<int>(ckpt.next_epoch);
    return util::Status::Ok();
  };

  if (config_.resume && ckpts != nullptr) {
    std::string path;
    auto loaded = ckpts->LoadLatestGood(&path);
    if (loaded.ok()) {
      util::Status s = restore(loaded.value());
      if (!s.ok()) {
        // A checkpoint for a different model/optimizer: fail instead of
        // silently retraining from scratch over the operator's run.
        result.status = s;
        return result;
      }
      result.start_epoch = epoch;
      if (config_.verbose) {
        DEEPST_LOG(Info) << "resumed from " << path << " at epoch " << epoch;
      }
    } else if (config_.verbose) {
      DEEPST_LOG(Info) << "no usable checkpoint ("
                       << loaded.status().message()
                       << "); training from scratch";
    }
  }

  TrainingCheckpoint last_good = snapshot(epoch);

  bool stop_early = false;
  while (epoch < config_.max_epochs && !stop_early) {
    util::Stopwatch epoch_watch;
    // Shuffle the identity permutation each epoch: the rng draw count and
    // the resulting order match the old per-epoch MakeBatches rebuild
    // exactly (a fresh sorted list shuffled once), so training trajectories
    // and checkpoint resume stay bitwise identical — without re-sorting the
    // dataset every epoch.
    std::iota(batch_order.begin(), batch_order.end(), size_t{0});
    rng.Shuffle(&batch_order);
    double loss_sum = 0.0;
    double ce_sum = 0.0;
    int64_t transitions = 0;
    int64_t trips = 0;
    bool stop_signal = false;
    for (const size_t bi : batch_order) {
      if (config_.stop_requested && config_.stop_requested()) {
        stop_signal = true;
        break;
      }
      const auto& batch = batches[bi];
      optimizer.ZeroGrad();
      LossStats stats;
      if (sharded) {
        // One sequential draw per batch keeps the main stream's rng
        // bookkeeping identical for every thread count (and checkpoints
        // keep resuming it at epoch boundaries); the shards derive their
        // own sub-streams from it.
        const uint64_t batch_seed = rng.NextUint64();
        stats = engine()->RunBatch(batch, batch_seed);
      } else {
        nn::VarPtr loss = model_->Loss(batch, &rng, &stats);
        nn::Backward(loss);
      }
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      loss_sum += stats.total * static_cast<double>(batch.size());
      ce_sum += stats.route_ce * static_cast<double>(batch.size());
      transitions += stats.num_transitions;
      trips += static_cast<int64_t>(batch.size());
    }
    if (stop_signal) {
      // Graceful stop (SIGTERM/SIGINT): discard the partial epoch so the
      // flushed checkpoint is exactly the epoch-boundary state a resume
      // would continue from -- a restart replays the interrupted epoch from
      // its start, keeping the run bitwise identical to one that was never
      // interrupted.
      (void)restore(last_good);
      result.interrupted = true;
      if (ckpts != nullptr) {
        util::Status s = ckpts->WriteLatest(last_good);
        if (!s.ok()) {
          DEEPST_LOG(Warning) << "final checkpoint flush failed: "
                              << s.ToString();
        }
      }
      if (config_.verbose) {
        DEEPST_LOG(Info) << "stop requested; flushed checkpoint at epoch "
                            "boundary "
                         << epoch;
      }
      break;
    }
    const double train_seconds = epoch_watch.ElapsedSeconds();

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = loss_sum / static_cast<double>(trips);
    // ce_sum accumulated per-trip route CE; renormalize per transition.
    es.train_route_ce =
        ce_sum / std::max<double>(1.0, static_cast<double>(transitions));
    es.transitions = transitions;
    es.transitions_per_sec =
        train_seconds > 0.0 ? static_cast<double>(transitions) / train_seconds
                            : 0.0;

    // Divergence guard: non-finite loss/params or a loss spike rolls the run
    // back to the last good epoch boundary and retries with a smaller step.
    double guard_loss = es.train_loss;
    if (config_.divergence_loss_hook) {
      guard_loss =
          config_.divergence_loss_hook(epoch, retries_used, es.train_loss);
    }
    const double prev_loss =
        result.epochs.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : result.epochs.back().train_loss;
    bool diverged = !std::isfinite(guard_loss);
    if (!diverged && std::isfinite(prev_loss)) {
      diverged = guard_loss - prev_loss >
                 config_.divergence_spike_factor *
                     std::max(1.0, std::abs(prev_loss));
    }
    if (!diverged) diverged = !AllParamsFinite(*model_);
    if (diverged) {
      if (retries_used >= config_.divergence_max_retries) {
        (void)restore(last_good);
        result.status = util::Status::Internal(
            "training diverged at epoch " + std::to_string(es.epoch) +
            " after " + std::to_string(retries_used) +
            " rollback retries; model left at last good epoch boundary");
        DEEPST_LOG(Warning) << result.status.ToString();
        break;
      }
      const int retries_after = retries_used + 1;
      (void)restore(last_good);
      retries_used = retries_after;
      const float backed_off = optimizer.lr() * config_.divergence_lr_backoff;
      optimizer.set_lr(backed_off);
      // Future rollbacks must resurrect the reduced rate, not the original.
      last_good.retries_used = retries_after;
      last_good.optimizer.lr = backed_off;
      DEEPST_LOG(Warning) << "divergence at epoch " << es.epoch
                          << " (loss " << guard_loss
                          << "); rolled back, lr -> " << backed_off
                          << " (retry " << retries_after << "/"
                          << config_.divergence_max_retries << ")";
      continue;
    }

    es.val_route_ce =
        validation.empty() ? 0.0 : EvaluateRouteCe(validation);
    es.seconds = epoch_watch.ElapsedSeconds();
    result.epochs.push_back(es);
    if (config_.verbose) {
      DEEPST_LOG(Info) << "epoch " << epoch << " train_loss "
                       << es.train_loss << " train_ce/step "
                       << es.train_route_ce << " val_ce/step "
                       << es.val_route_ce << " (" << es.seconds << "s, "
                       << static_cast<int64_t>(es.transitions_per_sec)
                       << " transitions/s)";
    }

    const double val_metric =
        validation.empty() ? es.train_route_ce : es.val_route_ce;
    bool improved = false;
    if (val_metric < best_val - 1e-4) {
      best_val = val_metric;
      result.best_epoch = epoch;
      since_best = 0;
      best_params = nn::SnapshotParameters(*model_);
      best_buffers = nn::SnapshotBuffers(*model_);
      improved = true;
    } else if (++since_best >= config_.patience) {
      if (config_.verbose) {
        DEEPST_LOG(Info) << "early stopping at epoch " << epoch;
      }
      stop_early = true;
    }

    ++epoch;
    last_good = snapshot(epoch);
    if (ckpts != nullptr) {
      if (epoch % every == 0 || stop_early || epoch >= config_.max_epochs) {
        util::Status s = ckpts->WriteLatest(last_good);
        if (!s.ok()) {
          DEEPST_LOG(Warning) << "checkpoint write failed: " << s.ToString();
        }
      }
      if (improved) {
        util::Status s = ckpts->WriteBest(last_good);
        if (!s.ok()) {
          DEEPST_LOG(Warning) << "best-checkpoint write failed: "
                              << s.ToString();
        }
      }
    }
  }

  // Leave the model at the best-validation epoch's weights. Early stopping
  // runs `patience` epochs past the optimum, and even a full run rarely ends
  // on its best epoch, so returning the last epoch's weights (the old
  // behavior) silently shipped a worse model.
  if (!best_params.empty()) {
    (void)nn::ApplyNamedTensors(model_, best_params);
    (void)nn::ApplyNamedBuffers(model_, best_buffers);
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

double Trainer::EvaluateRouteCe(
    const std::vector<const traj::TripRecord*>& data) {
  if (data.empty()) return 0.0;
  nn::ScopedBackendThreads scoped_threads(config_.num_threads);
  auto batches = MakeBatches(data, config_.batch_size);
  if (batches.empty()) return 0.0;
  // Batches are independent forward passes (MAP latents, batch-norm running
  // stats; the graph is built but never backwarded), so they fan out over the
  // backend. Each batch gets its own rng stream derived statelessly from its
  // index, so the draws -- and thus the CE -- are the same for every thread
  // count; under the default map_prediction config evaluation consumes no
  // randomness at all.
  const uint64_t eval_seed = config_.seed ^ 0xe4a1ULL;
  const int64_t nbatches = static_cast<int64_t>(batches.size());
  std::vector<double> ce(batches.size(), 0.0);
  std::vector<int64_t> transitions(batches.size(), 0);
  nn::GetBackend()->Run(nbatches, [&](int64_t i) {
    util::Rng rng(eval_seed ^
                  (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1)));
    LossStats stats;
    nn::VarPtr loss = model_->Loss(batches[static_cast<size_t>(i)], &rng,
                                   &stats, /*training=*/false);
    (void)loss;
    ce[static_cast<size_t>(i)] =
        stats.route_ce * static_cast<double>(batches[static_cast<size_t>(i)].size());
    transitions[static_cast<size_t>(i)] = stats.num_transitions;
  });
  // Combine in batch order: the sum is independent of task scheduling.
  double ce_sum = 0.0;
  int64_t total_transitions = 0;
  for (int64_t i = 0; i < nbatches; ++i) {
    ce_sum += ce[static_cast<size_t>(i)];
    total_transitions += transitions[static_cast<size_t>(i)];
  }
  return ce_sum / std::max<double>(1.0, static_cast<double>(total_transitions));
}

}  // namespace core
}  // namespace deepst
