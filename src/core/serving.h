#ifndef DEEPST_CORE_SERVING_H_
#define DEEPST_CORE_SERVING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/deepst_model.h"
#include "roadnet/spatial_index.h"
#include "util/status.h"

namespace deepst {
namespace core {

// Ways a query can be served with reduced fidelity instead of failing.
// Values are bitmask flags (a query can degrade along several axes at once).
enum Degradation : uint8_t {
  kDegradationNone = 0,
  // Missing or stale traffic snapshot: c fixed at the prior mean (zero),
  // which is exactly the paper's DeepST-C ablation at serving time.
  kDegradationTrafficPriorMean = 1 << 0,
  // Unresolvable destination proxy (destination far outside the network):
  // uniform proxy mixture pi = 1/K, the DeepST-pi fallback.
  kDegradationUniformProxy = 1 << 1,
  // Off-network point origin snapped to the nearest segment.
  kDegradationSnappedOrigin = 1 << 2,
  // Beam search returned the best hypothesis so far at the deadline.
  kDegradationDeadlineBudget = 1 << 3,
};

struct ServingConfig {
  // Strict mode refuses model-quality fallbacks (traffic prior mean,
  // uniform proxy, origin snapping) with FailedPrecondition instead of
  // degrading. The deadline budget is exempt: it is explicit per-query
  // configuration, and its best-so-far result is still reported degraded.
  bool strict = false;
  // Wall-clock budget for route generation; 0 disables the deadline.
  double deadline_ms = 0.0;
  // Traffic snapshots older than this relative to the query time count as
  // stale and trigger the prior-mean fallback.
  double max_snapshot_age_s = 3600.0;
  // A destination may lie this far outside the network bounding box before
  // the proxy encoder is considered unresolvable.
  double bounds_slack_m = 2000.0;
  // Point origins farther than this from any segment are rejected.
  double origin_snap_radius_m = 500.0;
  // Seed for the per-query rng; with the default MAP-prediction config no
  // draws occur and results are bitwise reproducible regardless.
  uint64_t rng_seed = 0x5eed;
};

struct ServingResult {
  traj::Route route;        // Predict only
  double score = 0.0;       // ScoreRoute only (log-likelihood)
  bool degraded = false;
  uint8_t degradations = kDegradationNone;  // bitmask of Degradation
  double latency_ms = 0.0;
};

// Human-readable names of the set bits, for logs and CLI output.
std::string DegradationsToString(uint8_t degradations);

// Hardened front door for prediction and scoring. Validates every query
// field against the network before the model sees it (the model layer
// DEEPST_CHECKs its preconditions and must never be reached with bad
// input), substitutes well-defined priors for unavailable context inputs,
// and converts in-flight query failures (injected or real) into Status
// instead of letting them escape. Thread-safe: all state is const after
// construction and the model's own prediction API is concurrency-safe.
class ServingContext {
 public:
  // `model` and `index` must outlive the context; `index` must be built
  // over `model->network()`.
  ServingContext(DeepSTModel* model, const roadnet::SpatialIndex* index,
                 const ServingConfig& config = {});

  // Route generation for one query. Non-OK only for invalid queries (bad
  // ids, non-finite fields), strict-mode refusals, or query execution
  // failures; degradable conditions come back OK with flags set.
  util::StatusOr<ServingResult> Predict(const RouteQuery& query);

  // Log-likelihood of `route` under the query's context. Routes with
  // out-of-range segment ids are invalid queries; contiguity failures score
  // -inf (a well-defined likelihood statement, not an error).
  util::StatusOr<ServingResult> ScoreRoute(const RouteQuery& query,
                                           const traj::Route& route);

  const ServingConfig& config() const { return config_; }

 private:
  // Validates and resolves the query in place (origin snapping), collecting
  // degradation flags and the context fallbacks to apply.
  util::Status ResolveQuery(RouteQuery* query, bool origin_required,
                            ContextOptions* options, uint8_t* degradations);

  DeepSTModel* model_;
  const roadnet::SpatialIndex* index_;
  ServingConfig config_;
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_SERVING_H_
