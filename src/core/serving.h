#ifndef DEEPST_CORE_SERVING_H_
#define DEEPST_CORE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/deepst_model.h"
#include "roadnet/spatial_index.h"
#include "traffic/store.h"
#include "util/status.h"

namespace deepst {
namespace core {

// Ways a query can be served with reduced fidelity instead of failing.
// Values are bitmask flags (a query can degrade along several axes at once).
enum Degradation : uint8_t {
  kDegradationNone = 0,
  // Missing or stale traffic snapshot: c fixed at the prior mean (zero),
  // which is exactly the paper's DeepST-C ablation at serving time.
  kDegradationTrafficPriorMean = 1 << 0,
  // Unresolvable destination proxy (destination far outside the network):
  // uniform proxy mixture pi = 1/K, the DeepST-pi fallback.
  kDegradationUniformProxy = 1 << 1,
  // Off-network point origin snapped to the nearest segment.
  kDegradationSnappedOrigin = 1 << 2,
  // Beam search returned the best hypothesis so far at the deadline.
  kDegradationDeadlineBudget = 1 << 3,
  // A what-if overlay was requested but the traffic snapshot was missing or
  // stale, so the prior-mean fallback served and there was no observed
  // tensor to edit: the scenario was dropped, the answer is reality under
  // the prior. Strict mode never reaches this -- it refuses the prior-mean
  // fallback first, so an overlay can never mask a real degradation.
  kDegradationOverlayDropped = 1 << 4,
};

struct ServingConfig {
  // Strict mode refuses model-quality fallbacks (traffic prior mean,
  // uniform proxy, origin snapping) with FailedPrecondition instead of
  // degrading. The deadline budget is exempt: it is explicit per-query
  // configuration, and its best-so-far result is still reported degraded.
  bool strict = false;
  // Wall-clock budget for route generation; 0 disables the deadline.
  double deadline_ms = 0.0;
  // Traffic snapshots older than this relative to the query time count as
  // stale and trigger the prior-mean fallback.
  double max_snapshot_age_s = 3600.0;
  // A destination may lie this far outside the network bounding box before
  // the proxy encoder is considered unresolvable.
  double bounds_slack_m = 2000.0;
  // Point origins farther than this from any segment are rejected.
  double origin_snap_radius_m = 500.0;
  // Seed for the per-query rng; with the default MAP-prediction config no
  // draws occur and results are bitwise reproducible regardless.
  uint64_t rng_seed = 0x5eed;
};

struct ServingResult {
  traj::Route route;        // Predict only
  double score = 0.0;       // ScoreRoute only (log-likelihood)
  // Multi-candidate scoring (batched score requests): one log-likelihood
  // per candidate route, ScoreRoutes conventions; `score` mirrors the first.
  std::vector<double> scores;
  bool degraded = false;
  uint8_t degradations = kDegradationNone;  // bitmask of Degradation
  double latency_ms = 0.0;
  // Traffic generation the query pinned at admission (0 when serving a
  // static snapshot without a SnapshotStore). Every tensor the query read
  // came from exactly this generation.
  uint64_t snapshot_generation = 0;
  // True when a what-if overlay was actually applied (counterfactual
  // answer, not reality).
  bool what_if = false;
  // kIngest only: rows made durable / rows dropped by validation.
  int64_t ingested = 0;
  int64_t ingest_rejected = 0;
};

// Cumulative accounting across every query served through one context.
// Updated atomically per query: concurrent queries tripping different
// degradation axes never lose counts, and each query's own result bitmask
// stays isolated from its neighbors'.
struct ServingStats {
  int64_t queries = 0;      // accepted queries (OK results)
  int64_t failures = 0;     // non-OK outcomes (validation, refusal, execution)
  int64_t degraded = 0;     // OK results with any degradation bit set
  int64_t traffic_prior_mean = 0;
  int64_t uniform_proxy = 0;
  int64_t snapped_origin = 0;
  int64_t deadline_budget = 0;
  int64_t overlay_dropped = 0;
  int64_t what_if = 0;      // OK results answered under an applied overlay
};

// One request inside a coalesced cross-client batch (see ExecuteBatch).
struct ServingRequest {
  enum class Kind { kPredict, kScore, kIngest };
  Kind kind = Kind::kPredict;
  RouteQuery query;
  // kScore: candidate routes (>= 1). Scored as one padded batch.
  std::vector<traj::Route> routes;
  // kIngest: observation rows to make durable and fold into the next
  // snapshot generation. The OK result is the durability ack (WAL append
  // done); per-row validation failures come back counted, not fatal.
  std::vector<traffic::SpeedObservation> observations;
  // Remaining per-request budget (already net of queue wait when the serve
  // daemon forwards it); 0 falls back to config.deadline_ms.
  double deadline_ms = 0.0;
};

// Human-readable names of the set bits, for logs and CLI output.
std::string DegradationsToString(uint8_t degradations);

// Hardened front door for prediction and scoring. Validates every query
// field against the network before the model sees it (the model layer
// DEEPST_CHECKs its preconditions and must never be reached with bad
// input), substitutes well-defined priors for unavailable context inputs,
// and converts in-flight query failures (injected or real) into Status
// instead of letting them escape. Thread-safe: all state is const after
// construction and the model's own prediction API is concurrency-safe.
class ServingContext {
 public:
  // `model` and `index` must outlive the context; `index` must be built
  // over `model->network()`. `store` (optional, must outlive the context)
  // turns on live-snapshot serving: every query pins the store's current
  // generation at admission and reads only that generation (epoch pinning),
  // and kIngest requests become available. Without a store, queries read
  // the model's construction-time cache and kIngest is refused.
  ServingContext(DeepSTModel* model, const roadnet::SpatialIndex* index,
                 const ServingConfig& config = {},
                 traffic::SnapshotStore* store = nullptr);

  // Route generation for one query. Non-OK only for invalid queries (bad
  // ids, non-finite fields), strict-mode refusals, or query execution
  // failures; degradable conditions come back OK with flags set.
  util::StatusOr<ServingResult> Predict(const RouteQuery& query);

  // Log-likelihood of `route` under the query's context. Routes with
  // out-of-range segment ids are invalid queries; contiguity failures score
  // -inf (a well-defined likelihood statement, not an error).
  util::StatusOr<ServingResult> ScoreRoute(const RouteQuery& query,
                                           const traj::Route& route);

  // Executes a batch of requests coalesced from different clients: each
  // request is validated/resolved individually, then all eligible predict
  // requests run as ONE lock-step beam batch and all score requests as ONE
  // padded scoring batch through a single leased inference session
  // (bitwise identical per request to the single-query calls above).
  // Execution is exception-isolated twice over: per-request resolution
  // failures only fail their own slot, and if the shared batch call throws
  // (an injected fault, allocation failure), every request is re-executed
  // individually so only the poisoned request returns Internal -- one bad
  // request never takes down the batch it rode in with.
  std::vector<util::StatusOr<ServingResult>> ExecuteBatch(
      std::vector<ServingRequest>* requests);

  // Snapshot of the cumulative counters (torn reads across fields are
  // possible but each field is itself a consistent atomic total).
  ServingStats stats() const;

  const ServingConfig& config() const { return config_; }
  // The served model (the serve daemon's watchdog retires its session pool
  // when recycling hung workers' leases).
  DeepSTModel* model() const { return model_; }
  // The live snapshot store, null when serving a static snapshot.
  traffic::SnapshotStore* snapshot_store() const { return store_; }

 private:
  // Validates and resolves the query in place (origin snapping), collecting
  // degradation flags and the context fallbacks to apply. `options` carries
  // the pinned cache in (staleness is judged against the pinned generation)
  // and the overlay out; `what_if` is set when the overlay will apply.
  util::Status ResolveQuery(RouteQuery* query, bool origin_required,
                            ContextOptions* options, uint8_t* degradations,
                            bool* what_if);
  // Pins the store's current generation (no-op pin without a store),
  // pointing `options` at the pinned cache and stamping the generation into
  // `result`. The returned pin must stay alive for the whole query.
  traffic::SnapshotPin PinSnapshot(ContextOptions* options,
                                   ServingResult* result);
  // kIngest execution: validate rows, WAL-append (the ack), queue for the
  // next swap.
  util::StatusOr<ServingResult> ExecuteIngest(const ServingRequest& request);
  // Folds one finished query into the atomic totals.
  void RecordOutcome(const util::StatusOr<ServingResult>& outcome);
  // Candidate-set validation for score requests (out-of-range segment ids
  // are invalid queries; contiguity is the scorer's business).
  util::Status ValidateScoreRoutes(const std::vector<traj::Route>& routes);
  // Predict with an explicit wall budget (the public Predict passes
  // config.deadline_ms; batch execution passes the request's remainder).
  util::StatusOr<ServingResult> PredictInternal(const RouteQuery& query,
                                                double deadline_ms);
  // Single-request execution with the request's own deadline; the per-item
  // fallback of ExecuteBatch and the non-batchable config path.
  util::StatusOr<ServingResult> ExecuteOne(const ServingRequest& request);

  DeepSTModel* model_;
  const roadnet::SpatialIndex* index_;
  ServingConfig config_;
  traffic::SnapshotStore* store_;
  // ServingStats, field by field (see stats()).
  std::atomic<int64_t> n_queries_{0};
  std::atomic<int64_t> n_failures_{0};
  std::atomic<int64_t> n_degraded_{0};
  std::atomic<int64_t> n_traffic_prior_mean_{0};
  std::atomic<int64_t> n_uniform_proxy_{0};
  std::atomic<int64_t> n_snapped_origin_{0};
  std::atomic<int64_t> n_deadline_budget_{0};
  std::atomic<int64_t> n_overlay_dropped_{0};
  std::atomic<int64_t> n_what_if_{0};
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_SERVING_H_
