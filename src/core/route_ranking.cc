#include "core/route_ranking.h"

#include <algorithm>
#include <cmath>

#include "roadnet/shortest_path.h"

namespace deepst {
namespace core {
namespace {

// Softmax-normalizes log-likelihoods into probabilities over the set.
void Normalize(std::vector<RankedRoute>* routes) {
  if (routes->empty()) return;
  double mx = -1e300;
  for (const auto& r : *routes) mx = std::max(mx, r.log_likelihood);
  double denom = 0.0;
  for (const auto& r : *routes) denom += std::exp(r.log_likelihood - mx);
  for (auto& r : *routes) {
    r.probability = std::exp(r.log_likelihood - mx) / denom;
  }
}

}  // namespace

std::vector<RankedRoute> RankRoutes(DeepSTModel* model,
                                    const RouteQuery& query,
                                    const std::vector<traj::Route>& candidates,
                                    util::Rng* rng) {
  PredictionContext ctx = model->MakeContext(query, rng);
  // One padded batch: every candidate advances through the same GRU step
  // instead of re-running the sequence per route.
  const std::vector<double> scores = model->ScoreRoutes(ctx, candidates);
  std::vector<RankedRoute> out;
  out.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    RankedRoute r;
    r.route = candidates[i];
    r.log_likelihood = scores[i];
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const RankedRoute& a, const RankedRoute& b) {
              return a.log_likelihood > b.log_likelihood;
            });
  Normalize(&out);
  return out;
}

std::vector<RankedRoute> RankCandidateRoutes(DeepSTModel* model,
                                             const roadnet::SpatialIndex& index,
                                             const RouteQuery& query,
                                             int num_candidates,
                                             util::Rng* rng) {
  const roadnet::RoadNetwork& net = model->network();
  roadnet::SegmentId target = query.final_segment;
  if (target == roadnet::kInvalidSegment) {
    target = index.Nearest(query.destination).segment;
  }
  if (target == roadnet::kInvalidSegment) return {};
  auto candidates = roadnet::KShortestPaths(
      net, query.origin, target, num_candidates,
      roadnet::FreeFlowTimeCost(net));
  std::vector<traj::Route> routes;
  routes.reserve(candidates.size());
  for (auto& c : candidates) routes.push_back(std::move(c.path));
  return RankRoutes(model, query, routes, rng);
}

}  // namespace core
}  // namespace deepst
