#include "core/deepst_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "core/infer/session.h"
#include "nn/backend.h"
#include "nn/ops.h"
#include "util/fault_injector.h"
#include "util/stopwatch.h"

namespace deepst {
namespace core {

namespace o = nn::ops;
using roadnet::SegmentId;

DeepSTModel::DeepSTModel(const roadnet::RoadNetwork& net,
                         const DeepSTConfig& config,
                         traffic::TrafficTensorCache* traffic_cache)
    : net_(net),
      config_(config),
      traffic_cache_(traffic_cache),
      init_rng_(config.seed) {
  DEEPST_CHECK(net.finalized());
  if (config.num_threads > 0) nn::SetBackendThreads(config.num_threads);
  util::Rng* rng = &init_rng_;
  const int nmax = net.MaxOutDegree();
  DEEPST_CHECK_GE(nmax, 2);

  segment_emb_ = std::make_unique<nn::EmbeddingLayer>(
      net.num_segments(), config.segment_embedding_dim, rng);
  int gru_input_dim = config.segment_embedding_dim;
  if (config.destination_mode != DestinationMode::kNone) {
    gru_input_dim += config.dest_dim;
  }
  if (config.use_traffic) gru_input_dim += config.traffic_dim;
  gru_ = std::make_unique<nn::StackedGru>(gru_input_dim, config.gru_hidden,
                                          config.gru_layers, rng);
  alpha_ = std::make_unique<nn::LinearLayer>(config.gru_hidden, nmax, rng);
  AddSubmodule("segment_emb", segment_emb_.get());
  AddSubmodule("gru", gru_.get());
  AddSubmodule("alpha", alpha_.get());

  switch (config.destination_mode) {
    case DestinationMode::kProxies:
      proxy_ = std::make_unique<DestinationProxyModel>(
          config.num_proxies, config.dest_dim, net.bounds(),
          config.mlp_hidden, rng);
      beta_ = std::make_unique<nn::LinearLayer>(config.dest_dim, nmax, rng,
                                                /*bias=*/false);
      AddSubmodule("proxy", proxy_.get());
      AddSubmodule("beta", beta_.get());
      break;
    case DestinationMode::kFinalSegment:
      final_segment_emb_ = std::make_unique<nn::EmbeddingLayer>(
          net.num_segments(), config.dest_dim, rng);
      beta_ = std::make_unique<nn::LinearLayer>(config.dest_dim, nmax, rng,
                                                /*bias=*/false);
      AddSubmodule("final_segment_emb", final_segment_emb_.get());
      AddSubmodule("beta", beta_.get());
      break;
    case DestinationMode::kNone:
      break;
  }

  if (config.use_traffic) {
    DEEPST_CHECK_MSG(traffic_cache != nullptr,
                     "use_traffic requires a traffic cache");
    traffic_encoder_ = std::make_unique<TrafficEncoder>(
        traffic_cache->rows(), traffic_cache->cols(), config.cnn_channels,
        config.traffic_dim, config.mlp_hidden, rng);
    gamma_ = std::make_unique<nn::LinearLayer>(config.traffic_dim, nmax, rng,
                                               /*bias=*/false);
    AddSubmodule("traffic_encoder", traffic_encoder_.get());
    AddSubmodule("gamma", gamma_.get());
  }

  if (config.memo_cache_capacity > 0) {
    memo_ = std::make_unique<nn::infer::TransitionMemoCache>(
        nmax, config.gru_layers, config.gru_hidden,
        config.memo_cache_capacity);
  }
}

DeepSTModel::~DeepSTModel() = default;

util::StatusOr<std::unique_ptr<DeepSTModel>> DeepSTModel::LoadFromParams(
    const roadnet::RoadNetwork& net, const DeepSTConfig& config,
    traffic::TrafficTensorCache* traffic_cache,
    const std::vector<nn::NamedTensor>& params) {
  std::unique_ptr<DeepSTModel> model;
  {
    nn::ScopedDeferInit defer_init;
    model = std::make_unique<DeepSTModel>(net, config, traffic_cache);
  }
  DEEPST_RETURN_IF_ERROR(nn::ApplyNamedTensors(model.get(), params));
  return model;
}

util::StatusOr<std::unique_ptr<DeepSTModel>> DeepSTModel::LoadFromFile(
    const roadnet::RoadNetwork& net, const DeepSTConfig& config,
    traffic::TrafficTensorCache* traffic_cache, const std::string& path) {
  std::unique_ptr<DeepSTModel> model;
  {
    nn::ScopedDeferInit defer_init;
    model = std::make_unique<DeepSTModel>(net, config, traffic_cache);
  }
  DEEPST_RETURN_IF_ERROR(nn::LoadParameters(model.get(), path));
  return model;
}

std::unique_ptr<infer::InferenceSession> DeepSTModel::AcquireSession() {
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (!session_pool_.empty()) {
      std::unique_ptr<infer::InferenceSession> session =
          std::move(session_pool_.back());
      session_pool_.pop_back();
      return session;
    }
  }
  return std::make_unique<infer::InferenceSession>(this);
}

void DeepSTModel::ReleaseSession(
    std::unique_ptr<infer::InferenceSession> session, uint64_t generation) {
  // A retire that ran while this session was leased makes it stale: its
  // scratch state may reflect whatever the (possibly hung) query left
  // behind, so destroy it here instead of re-pooling.
  if (generation != session_generation_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(session_mu_);
  session_pool_.push_back(std::move(session));
}

size_t DeepSTModel::num_pooled_sessions() {
  std::lock_guard<std::mutex> lock(session_mu_);
  return session_pool_.size();
}

void DeepSTModel::RetirePooledSessions() {
  std::vector<std::unique_ptr<infer::InferenceSession>> doomed;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    session_generation_.fetch_add(1, std::memory_order_acq_rel);
    doomed.swap(session_pool_);
  }
  // Retirement's contract is "derived inference state may be stale": drop
  // the packed weights so replacement sessions repack from the current
  // float parameters, and invalidate the memo cache for the same reason.
  // Sessions already leased out keep their (possibly stale) shared_ptr and
  // pinned epoch, finish self-consistently, and are dropped on release.
  {
    std::lock_guard<std::mutex> lock(weights_mu_);
    shared_weights_.reset();
  }
  InvalidateTransitionCache();
  // Session destructors run outside the lock.
}

std::shared_ptr<const infer::SharedInferWeights>
DeepSTModel::shared_infer_weights() const {
  std::lock_guard<std::mutex> lock(weights_mu_);
  if (shared_weights_ == nullptr) {
    shared_weights_ = infer::SharedInferWeights::Build(*this);
  }
  return shared_weights_;
}

nn::infer::MemoStats DeepSTModel::transition_memo_stats() const {
  if (memo_ == nullptr) return nn::infer::MemoStats();
  return memo_->stats();
}

void DeepSTModel::InvalidateTransitionCache() {
  if (memo_ != nullptr) memo_->Invalidate();
}

int64_t DeepSTModel::outstanding_session_leases() const {
  return outstanding_leases_.load(std::memory_order_relaxed);
}

// RAII lease: returns the session to the pool at scope exit so its warm
// scratch buffers are reused by the next call.
class DeepSTModel::SessionLease {
 public:
  explicit SessionLease(DeepSTModel* model)
      : model_(model),
        generation_(
            model->session_generation_.load(std::memory_order_acquire)),
        session_(model->AcquireSession()) {
    model_->outstanding_leases_.fetch_add(1, std::memory_order_relaxed);
  }
  ~SessionLease() {
    // Leases unwind through query failures (the serving layer converts the
    // exception to a Status), so the destructor must neither leak the slot
    // nor throw during unwind. If returning the session fails (pool
    // push_back allocation), drop it: a fresh one is created on demand.
    try {
      model_->ReleaseSession(std::move(session_), generation_);
    } catch (...) {
    }
    model_->outstanding_leases_.fetch_sub(1, std::memory_order_relaxed);
  }
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;
  infer::InferenceSession* operator->() { return session_.get(); }

 private:
  DeepSTModel* model_;
  uint64_t generation_;
  std::unique_ptr<infer::InferenceSession> session_;
};

nn::VarPtr DeepSTModel::StepLogits(const nn::VarPtr& h,
                                   const nn::VarPtr& dest_term,
                                   const nn::VarPtr& traffic_term) const {
  nn::VarPtr logits = alpha_->Forward(h);
  if (dest_term != nullptr) logits = o::Add(logits, dest_term);
  if (traffic_term != nullptr) logits = o::Add(logits, traffic_term);
  return logits;
}

namespace {

// Concatenates the token embedding with per-trip context representations to
// form the GRU step input (see the BatchContext implementation note).
nn::VarPtr GruInput(const nn::VarPtr& emb, const nn::VarPtr& dest_repr,
                    const nn::VarPtr& traffic_repr) {
  std::vector<nn::VarPtr> parts = {emb};
  if (dest_repr != nullptr) parts.push_back(dest_repr);
  if (traffic_repr != nullptr) parts.push_back(traffic_repr);
  if (parts.size() == 1) return emb;
  return o::ConcatCols(parts);
}

}  // namespace

DeepSTModel::BatchContext DeepSTModel::MakeBatchContext(
    const std::vector<const traj::Trip*>& batch, util::Rng* rng,
    bool training, std::vector<nn::VarPtr>* extra_loss_terms,
    LossStats* stats, traffic::TrafficTensorCache* traffic_cache,
    const traffic::TrafficOverlay* overlay) {
  const int64_t bsz = static_cast<int64_t>(batch.size());
  BatchContext ctx;

  // -- Destination term --------------------------------------------------------
  if (config_.destination_mode == DestinationMode::kProxies) {
    std::vector<geo::Point> dests;
    nn::Tensor row_weights({bsz});
    dests.reserve(batch.size());
    for (int64_t b = 0; b < bsz; ++b) {
      const traj::Trip* trip = batch[static_cast<size_t>(b)];
      dests.push_back(trip->destination);
      const double w = config_.dest_loss_length_scaled
                           ? static_cast<double>(trip->route.size()) - 1.0
                           : 1.0;
      row_weights[b] = static_cast<float>(std::max(w, 1.0));
    }
    nn::Tensor x_norm = proxy_->NormalizeDestinations(dests);
    nn::VarPtr logits_pi = proxy_->EncodeLogits(x_norm);
    nn::VarPtr pi = training
                        ? proxy_->SamplePi(logits_pi, config_.gumbel_tau, rng)
                        : (config_.map_prediction
                               ? proxy_->ModePi(logits_pi)
                               : proxy_->SamplePi(logits_pi,
                                                  config_.gumbel_tau, rng));
    ctx.dest_repr = proxy_->Embed(pi);
    ctx.dest_term = beta_->Forward(ctx.dest_repr);
    if (extra_loss_terms != nullptr) {
      // Eq. 7: + log P(x | pi, M, S) (weighted), - 2 KL(q(pi|x) || P(pi)).
      nn::VarPtr dest_lp =
          proxy_->DestinationLogProb(x_norm, pi, row_weights);
      nn::VarPtr kl_pi = proxy_->Kl(logits_pi);
      extra_loss_terms->push_back(
          o::ScalarMul(dest_lp, -config_.dest_loss_weight));
      extra_loss_terms->push_back(
          o::ScalarMul(kl_pi, 2.0f * config_.kl_weight));
      if (stats != nullptr) {
        stats->dest_nll = -dest_lp->value()[0] / static_cast<double>(bsz);
        stats->kl_proxy = kl_pi->value()[0] / static_cast<double>(bsz);
      }
    }
  } else if (config_.destination_mode == DestinationMode::kFinalSegment) {
    std::vector<int> finals;
    finals.reserve(batch.size());
    for (const traj::Trip* trip : batch) {
      finals.push_back(static_cast<int>(trip->route.back()));
    }
    ctx.dest_repr = final_segment_emb_->Forward(finals);
    ctx.dest_term = beta_->Forward(ctx.dest_repr);
  }

  // -- Traffic term -------------------------------------------------------------
  if (config_.use_traffic) {
    // Unique traffic slots in the batch share one encoded tensor (paper
    // Section IV-D). The cache is the pinned snapshot when the serving
    // layer passed one, the construction-time default otherwise.
    traffic::TrafficTensorCache* cache =
        traffic_cache != nullptr ? traffic_cache : traffic_cache_;
    std::map<int, int> slot_to_index;
    std::vector<const nn::Tensor*> unique_tensors;
    std::vector<nn::Tensor> overlaid;  // what-if copies (never the base)
    std::vector<int> trip_slot_index(batch.size());
    for (size_t b = 0; b < batch.size(); ++b) {
      const int slot = cache->SlotOf(batch[b]->start_time_s);
      auto [it, inserted] =
          slot_to_index.emplace(slot, static_cast<int>(unique_tensors.size()));
      if (inserted) {
        unique_tensors.push_back(
            &cache->TensorForTime(batch[b]->start_time_s));
      }
      trip_slot_index[b] = it->second;
    }
    if (overlay != nullptr && !overlay->empty()) {
      overlaid.reserve(unique_tensors.size());
      for (const nn::Tensor* base : unique_tensors) {
        overlaid.push_back(
            traffic::ApplyOverlay(*base, cache->grid(), *overlay));
      }
      for (size_t i = 0; i < overlaid.size(); ++i) {
        unique_tensors[i] = &overlaid[i];
      }
    }
    TrafficPosterior post = traffic_encoder_->Encode(unique_tensors, training);
    // Gather per-trip posterior params, then reparameterize per trip.
    nn::VarPtr mu_b = o::EmbeddingLookup(post.mu, trip_slot_index);
    nn::VarPtr logvar_b = o::EmbeddingLookup(post.logvar, trip_slot_index);
    nn::VarPtr c;
    const bool sample =
        training ? !config_.deterministic_traffic_latent
                 : !config_.map_prediction;
    if (sample) {
      c = o::GaussianReparameterize(mu_b, logvar_b, rng);
    } else {
      c = mu_b;
    }
    ctx.traffic_repr = c;
    ctx.traffic_term = gamma_->Forward(c);
    if (extra_loss_terms != nullptr) {
      nn::VarPtr kl_c = o::KlStandardNormal(mu_b, logvar_b);
      extra_loss_terms->push_back(o::ScalarMul(kl_c, config_.kl_weight));
      if (stats != nullptr) {
        stats->kl_traffic = kl_c->value()[0] / static_cast<double>(bsz);
      }
    }
  }
  return ctx;
}

nn::VarPtr DeepSTModel::Loss(const std::vector<const traj::Trip*>& batch,
                             util::Rng* rng, LossStats* stats,
                             bool training) {
  DEEPST_CHECK(!batch.empty());
  const int64_t bsz = static_cast<int64_t>(batch.size());
  const int nmax = net_.MaxOutDegree();

  std::vector<nn::VarPtr> extra_terms;
  BatchContext ctx =
      MakeBatchContext(batch, rng, training, &extra_terms, stats);

  // Sequence tensors: step t consumes token r_t and predicts the slot of
  // r_{t+1}.
  int64_t max_steps = 0;
  for (const traj::Trip* trip : batch) {
    DEEPST_CHECK_GE(trip->route.size(), 2u);
    max_steps = std::max(max_steps,
                         static_cast<int64_t>(trip->route.size()) - 1);
  }
  int total_transitions = 0;

  auto state = gru_->InitialState(bsz);
  std::vector<nn::VarPtr> step_losses;
  // Scheduled sampling state: the model's previous-step argmax prediction
  // per trip (kInvalidSegment when unavailable).
  std::vector<SegmentId> prev_prediction(batch.size(),
                                         roadnet::kInvalidSegment);
  const bool scheduled =
      training && config_.scheduled_sampling_prob > 0.0f;
  for (int64_t t = 0; t < max_steps; ++t) {
    std::vector<int> tokens(batch.size(), 0);
    std::vector<int> targets(batch.size(), 0);
    std::vector<float> weights(batch.size(), 0.0f);
    nn::Tensor mask;
    if (config_.mask_invalid_slots) mask = nn::Tensor::Zeros({bsz, nmax});
    for (size_t b = 0; b < batch.size(); ++b) {
      const traj::Route& route = batch[b]->route;
      if (t + 1 >= static_cast<int64_t>(route.size())) continue;
      SegmentId cur = route[static_cast<size_t>(t)];
      const SegmentId nxt = route[static_cast<size_t>(t) + 1];
      // Scheduled sampling: substitute the model's own last prediction when
      // it still admits the true next segment (same end vertex), exposing
      // the recurrent state to its own mistakes.
      if (scheduled && prev_prediction[b] != roadnet::kInvalidSegment &&
          prev_prediction[b] != cur &&
          net_.NeighborSlot(prev_prediction[b], nxt) >= 0 &&
          rng->Bernoulli(config_.scheduled_sampling_prob)) {
        cur = prev_prediction[b];
      }
      const int slot = net_.NeighborSlot(cur, nxt);
      DEEPST_CHECK_GE(slot, 0);
      tokens[b] = static_cast<int>(cur);
      targets[b] = slot;
      weights[b] = 1.0f;
      ++total_transitions;
      if (config_.mask_invalid_slots) {
        const int deg = net_.OutDegree(cur);
        for (int s = deg; s < nmax; ++s) {
          mask.at(static_cast<int64_t>(b), s) = -1e9f;
        }
      }
    }
    nn::VarPtr x = GruInput(segment_emb_->Forward(tokens), ctx.dest_repr,
                            ctx.traffic_repr);
    nn::VarPtr h = gru_->Step(x, &state);
    nn::VarPtr logits = StepLogits(h, ctx.dest_term, ctx.traffic_term);
    if (config_.mask_invalid_slots) {
      logits = o::Add(logits, nn::Constant(mask));
    }
    if (scheduled) {
      // Record per-trip argmax predictions for the next step's substitution.
      const nn::Tensor& lv = logits->value();
      for (size_t b = 0; b < batch.size(); ++b) {
        if (weights[b] == 0.0f) {
          prev_prediction[b] = roadnet::kInvalidSegment;
          continue;
        }
        const SegmentId cur = static_cast<SegmentId>(tokens[b]);
        const auto& outs = net_.OutSegments(cur);
        int best = 0;
        for (int s = 1; s < static_cast<int>(outs.size()); ++s) {
          if (lv.at(static_cast<int64_t>(b), s) >
              lv.at(static_cast<int64_t>(b), best)) {
            best = s;
          }
        }
        prev_prediction[b] = outs[static_cast<size_t>(best)];
      }
    }
    step_losses.push_back(o::CrossEntropyLoss(logits, targets, weights));
  }

  nn::VarPtr route_ce = step_losses[0];
  for (size_t i = 1; i < step_losses.size(); ++i) {
    route_ce = o::Add(route_ce, step_losses[i]);
  }
  nn::VarPtr total = route_ce;
  for (const auto& term : extra_terms) total = o::Add(total, term);
  total = o::ScalarMul(total, 1.0f / static_cast<float>(bsz));

  if (stats != nullptr) {
    stats->total = total->value()[0];
    stats->route_ce = route_ce->value()[0] / static_cast<double>(bsz);
    stats->num_transitions = total_transitions;
  }
  return total;
}

PredictionContext DeepSTModel::MakeContext(const RouteQuery& query,
                                           util::Rng* rng) {
  return MakeContextImpl(query, rng, nullptr, nullptr);
}

PredictionContext DeepSTModel::MakeContextImpl(
    const RouteQuery& query, util::Rng* rng,
    traffic::TrafficTensorCache* traffic_cache,
    const traffic::TrafficOverlay* overlay) {
  // Inference-only forward: no tape nodes, so the extracted context tensors
  // never anchor parameter subgraphs.
  nn::NoGradGuard no_grad;
  // Reuse the batch-context machinery with a synthetic single-trip batch.
  traj::Trip probe;
  probe.destination = query.destination;
  probe.start_time_s = query.start_time_s;
  // Route only consulted for its final segment (CSSRNN mode) and length
  // scaling (not used at prediction).
  const SegmentId final_seg =
      query.final_segment != roadnet::kInvalidSegment ? query.final_segment
                                                      : query.origin;
  probe.route = {query.origin, final_seg};
  if (config_.destination_mode == DestinationMode::kFinalSegment) {
    DEEPST_CHECK_MSG(query.final_segment != roadnet::kInvalidSegment,
                     "kFinalSegment mode requires query.final_segment");
  }
  std::vector<const traj::Trip*> batch = {&probe};
  BatchContext ctx =
      MakeBatchContext(batch, rng, /*training=*/false, nullptr, nullptr,
                       traffic_cache, overlay);

  PredictionContext out;
  out.destination = query.destination;
  if (ctx.dest_term != nullptr) {
    out.has_dest = true;
    out.dest_term = ctx.dest_term->value();
    out.dest_repr = ctx.dest_repr->value();
  }
  if (ctx.traffic_term != nullptr) {
    out.has_traffic = true;
    out.traffic_term = ctx.traffic_term->value();
    out.traffic_repr = ctx.traffic_repr->value();
  }
  return out;
}

PredictionContext DeepSTModel::MakeContext(const RouteQuery& query,
                                           util::Rng* rng,
                                           const ContextOptions& options) {
  const bool drop_traffic = options.traffic_prior_mean && config_.use_traffic;
  const bool uniform =
      options.uniform_proxy &&
      config_.destination_mode == DestinationMode::kProxies;
  // Prior-mean substitution never reads a tensor, so the overlay has
  // nothing to edit and is dropped (the serving layer accounts for this).
  const traffic::TrafficOverlay* overlay =
      drop_traffic ? nullptr : options.overlay;
  if (!drop_traffic && !uniform) {
    return MakeContextImpl(query, rng, options.traffic_cache, overlay);
  }

  nn::NoGradGuard no_grad;
  // The destination and traffic parts of the context are independent (the
  // proxy term depends only on the destination, the traffic term only on
  // the start time), so the regular path computes whatever is not being
  // overridden. When the destination is the unusable input, it must never
  // reach the proxy encoder -- run the regular path on a safe placeholder
  // and overwrite its destination outputs below.
  RouteQuery safe = query;
  if (uniform) {
    const geo::BoundingBox& box = net_.bounds();
    safe.destination = geo::Point{(box.min.x + box.max.x) * 0.5,
                                  (box.min.y + box.max.y) * 0.5};
  }
  PredictionContext out =
      MakeContextImpl(safe, rng, options.traffic_cache, overlay);
  out.destination = query.destination;

  if (drop_traffic) {
    // Prior-mean substitution: c is a standard-normal latent, so its prior
    // mean is the zero vector; gamma has no bias, so gamma(0) == 0 exactly
    // and the logit term vanishes -- bitwise DeepST-C behavior. The tensors
    // keep their shapes (the GRU input width includes traffic_dim).
    out.has_traffic = true;
    out.traffic_repr = nn::Tensor::Zeros({1, config_.traffic_dim});
    out.traffic_term = nn::Tensor::Zeros({1, net_.MaxOutDegree()});
  }
  if (uniform) {
    // Uniform proxy mixture: pi = 1/K over all proxies, embedded through the
    // learned W so the representation stays on the trained manifold.
    const int k = proxy_->num_proxies();
    nn::Tensor pi({1, k});
    const float w = 1.0f / static_cast<float>(k);
    for (int i = 0; i < k; ++i) pi[i] = w;
    nn::VarPtr repr = proxy_->Embed(nn::Constant(pi));
    out.has_dest = true;
    out.dest_repr = repr->value();
    out.dest_term = beta_->Forward(repr)->value();
  }
  return out;
}

double ValidSlotLogProb(const float* logits_row, int num_valid, int slot) {
  DEEPST_CHECK(slot >= 0 && slot < num_valid);
  double mx = logits_row[0];
  for (int s = 1; s < num_valid; ++s) {
    mx = std::max(mx, static_cast<double>(logits_row[s]));
  }
  double denom = 0.0;
  for (int s = 0; s < num_valid; ++s) {
    denom += std::exp(logits_row[s] - mx);
  }
  return logits_row[slot] - mx - std::log(denom);
}

namespace {

// One hypothesis of the beam search.
struct Beam {
  traj::Route route;
  std::vector<nn::VarPtr> state;
  std::vector<bool> visited;  // loop guard, indexed by SegmentId
  double log_prob = 0.0;
  bool done = false;

  // Mildly length-normalized score: sqrt normalization trades off the
  // short-route bias of raw sums against the long-route bias of means.
  double Score() const {
    const size_t n = route.size() > 1 ? route.size() - 1 : 1;
    return log_prob / std::sqrt(static_cast<double>(n));
  }
};

}  // namespace

traj::Route DeepSTModel::PredictRouteBeamReference(const PredictionContext& ctx,
                                                   SegmentId origin,
                                                   util::Rng* rng,
                                                   double deadline_ms,
                                                   bool* budget_hit) {
  nn::NoGradGuard no_grad;
  if (budget_hit != nullptr) *budget_hit = false;
  util::Stopwatch deadline_sw;
  const int width = config_.beam_width;
  nn::VarPtr dest_term =
      ctx.has_dest ? nn::Constant(ctx.dest_term) : nullptr;
  nn::VarPtr dest_repr =
      ctx.has_dest ? nn::Constant(ctx.dest_repr) : nullptr;
  nn::VarPtr traffic_term =
      ctx.has_traffic ? nn::Constant(ctx.traffic_term) : nullptr;
  nn::VarPtr traffic_repr =
      ctx.has_traffic ? nn::Constant(ctx.traffic_repr) : nullptr;

  std::vector<Beam> beams(1);
  beams[0].route = {origin};
  beams[0].state = gru_->InitialState(1);
  beams[0].visited.assign(static_cast<size_t>(net_.num_segments()), false);
  beams[0].visited[static_cast<size_t>(origin)] = true;

  for (int step = 0; step < config_.max_route_steps; ++step) {
    std::vector<Beam> pool;
    bool any_active = false;
    for (Beam& beam : beams) {
      if (beam.done) {
        pool.push_back(std::move(beam));
        continue;
      }
      const SegmentId cur = beam.route.back();
      const auto& outs = net_.OutSegments(cur);
      if (outs.empty()) {
        beam.done = true;
        pool.push_back(std::move(beam));
        continue;
      }
      any_active = true;
      auto state = beam.state;
      nn::VarPtr x = GruInput(segment_emb_->Forward({static_cast<int>(cur)}),
                              dest_repr, traffic_repr);
      nn::VarPtr h = gru_->Step(x, &state);
      nn::VarPtr logits = StepLogits(h, dest_term, traffic_term);
      // Expand the top-`width` valid slots, skipping already-visited
      // segments (generated routes, like real trips, are loopless). Log
      // probabilities are normalized over the valid slots so beams remain
      // comparable across segments of different out-degree.
      const int deg = static_cast<int>(outs.size());
      std::vector<std::pair<double, int>> ranked;
      for (int s = 0; s < deg; ++s) {
        if (beam.visited[static_cast<size_t>(outs[static_cast<size_t>(s)])]) {
          continue;
        }
        ranked.emplace_back(ValidSlotLogProb(logits->value().data(), deg, s),
                            s);
      }
      if (ranked.empty()) {  // boxed in: terminate this hypothesis
        beam.done = true;
        pool.push_back(std::move(beam));
        continue;
      }
      std::sort(ranked.rbegin(), ranked.rend());
      const int expand = std::min<int>(width, static_cast<int>(ranked.size()));
      for (int e = 0; e < expand; ++e) {
        Beam next = beam;
        next.state = state;
        next.log_prob += ranked[static_cast<size_t>(e)].first;
        const SegmentId seg =
            outs[static_cast<size_t>(ranked[static_cast<size_t>(e)].second)];
        next.route.push_back(seg);
        next.visited[static_cast<size_t>(seg)] = true;
        next.done = ShouldStop(net_, ctx.destination, seg, config_, rng);
        pool.push_back(std::move(next));
      }
    }
    // Keep the best `width` hypotheses by normalized score.
    std::sort(pool.begin(), pool.end(), [](const Beam& a, const Beam& b) {
      return a.Score() > b.Score();
    });
    if (static_cast<int>(pool.size()) > width) {
      pool.resize(static_cast<size_t>(width));
    }
    beams = std::move(pool);
    if (!any_active) break;
    const bool all_done = std::all_of(beams.begin(), beams.end(),
                                      [](const Beam& b) { return b.done; });
    if (all_done) break;
    // Deadline budget: checked only between completed expansion steps, so
    // at least one step always runs and the returned route is always a
    // valid (possibly short) hypothesis.
    if (deadline_ms > 0.0 && deadline_sw.ElapsedMillis() >= deadline_ms) {
      if (budget_hit != nullptr) *budget_hit = true;
      break;
    }
  }
  // Prefer completed hypotheses.
  const Beam* best = nullptr;
  for (const Beam& b : beams) {
    if (!b.done) continue;
    if (best == nullptr || b.Score() > best->Score()) best = &b;
  }
  if (best == nullptr) {
    for (const Beam& b : beams) {
      if (best == nullptr || b.Score() > best->Score()) best = &b;
    }
  }
  DEEPST_CHECK(best != nullptr);
  return best->route;
}

traj::Route DeepSTModel::PredictRouteReference(const PredictionContext& ctx,
                                               SegmentId origin,
                                               util::Rng* rng) {
  nn::NoGradGuard no_grad;
  DEEPST_CHECK(origin >= 0 && origin < net_.num_segments());
  if (config_.map_prediction && config_.beam_width > 1) {
    return PredictRouteBeamReference(ctx, origin, rng);
  }
  traj::Route route = {origin};
  auto state = gru_->InitialState(1);
  nn::VarPtr dest_term =
      ctx.has_dest ? nn::Constant(ctx.dest_term) : nullptr;
  nn::VarPtr dest_repr =
      ctx.has_dest ? nn::Constant(ctx.dest_repr) : nullptr;
  nn::VarPtr traffic_term =
      ctx.has_traffic ? nn::Constant(ctx.traffic_term) : nullptr;
  nn::VarPtr traffic_repr =
      ctx.has_traffic ? nn::Constant(ctx.traffic_repr) : nullptr;

  std::vector<bool> visited(static_cast<size_t>(net_.num_segments()), false);
  visited[static_cast<size_t>(origin)] = true;
  SegmentId cur = origin;
  for (int step = 0; step < config_.max_route_steps; ++step) {
    const auto& outs = net_.OutSegments(cur);
    if (outs.empty()) break;
    nn::VarPtr x = GruInput(segment_emb_->Forward({static_cast<int>(cur)}),
                            dest_repr, traffic_repr);
    nn::VarPtr h = gru_->Step(x, &state);
    nn::VarPtr logits = StepLogits(h, dest_term, traffic_term);
    const nn::Tensor& lv = logits->value();
    // Restrict the choice to the true neighbors of `cur` (Algorithm 2 draws
    // from the adjacent road segments) that have not been visited yet
    // (loop guard).
    int best = -1;
    if (config_.map_prediction) {
      for (int s = 0; s < static_cast<int>(outs.size()); ++s) {
        if (visited[static_cast<size_t>(outs[static_cast<size_t>(s)])]) {
          continue;
        }
        if (best < 0 || lv[s] > lv[best]) best = s;
      }
    } else {
      std::vector<double> w(outs.size(), 0.0);
      double mx = -1e30;
      bool any = false;
      for (size_t s = 0; s < outs.size(); ++s) {
        if (visited[static_cast<size_t>(outs[s])]) continue;
        mx = std::max(mx, static_cast<double>(lv[static_cast<int64_t>(s)]));
        any = true;
      }
      if (any) {
        for (size_t s = 0; s < outs.size(); ++s) {
          if (visited[static_cast<size_t>(outs[s])]) continue;
          w[s] = std::exp(lv[static_cast<int64_t>(s)] - mx);
        }
        best = rng->Categorical(w);
      }
    }
    if (best < 0) break;  // boxed in by visited segments
    const SegmentId next = outs[static_cast<size_t>(best)];
    route.push_back(next);
    visited[static_cast<size_t>(next)] = true;
    if (ShouldStop(net_, ctx.destination, next, config_, rng)) break;
    cur = next;
  }
  return route;
}

traj::Route DeepSTModel::PredictRoute(const RouteQuery& query,
                                      util::Rng* rng) {
  PredictionContext ctx = MakeContext(query, rng);
  return PredictRoute(ctx, query.origin, rng);
}

double DeepSTModel::ScoreContinuationReference(
    const PredictionContext& ctx, const traj::Route& prefix,
    const traj::Route& continuation) {
  nn::NoGradGuard no_grad;
  if (prefix.empty()) return ScoreRouteReference(ctx, continuation);
  DEEPST_CHECK(!continuation.empty());
  DEEPST_CHECK_EQ(continuation.front(), prefix.back());
  traj::Route full = prefix;
  full.insert(full.end(), continuation.begin() + 1, continuation.end());
  if (!net_.ValidateRoute(full).ok()) {
    return -std::numeric_limits<double>::infinity();
  }
  nn::VarPtr dest_term =
      ctx.has_dest ? nn::Constant(ctx.dest_term) : nullptr;
  nn::VarPtr dest_repr =
      ctx.has_dest ? nn::Constant(ctx.dest_repr) : nullptr;
  nn::VarPtr traffic_term =
      ctx.has_traffic ? nn::Constant(ctx.traffic_term) : nullptr;
  nn::VarPtr traffic_repr =
      ctx.has_traffic ? nn::Constant(ctx.traffic_repr) : nullptr;
  auto state = gru_->InitialState(1);
  double log_lik = 0.0;
  // Transitions before the gap warm the state but are not scored.
  const size_t first_scored = prefix.size() - 1;
  for (size_t i = 0; i + 1 < full.size(); ++i) {
    nn::VarPtr x =
        GruInput(segment_emb_->Forward({static_cast<int>(full[i])}),
                 dest_repr, traffic_repr);
    nn::VarPtr h = gru_->Step(x, &state);
    if (i < first_scored) continue;
    nn::VarPtr logits = StepLogits(h, dest_term, traffic_term);
    const int slot = net_.NeighborSlot(full[i], full[i + 1]);
    DEEPST_CHECK_GE(slot, 0);
    log_lik += ValidSlotLogProb(logits->value().data(),
                                net_.OutDegree(full[i]), slot);
  }
  return log_lik;
}

double DeepSTModel::ScoreRouteReference(const PredictionContext& ctx,
                                        const traj::Route& route) {
  nn::NoGradGuard no_grad;
  if (route.size() < 2) return 0.0;
  if (!net_.ValidateRoute(route).ok()) {
    return -std::numeric_limits<double>::infinity();
  }
  nn::VarPtr dest_term =
      ctx.has_dest ? nn::Constant(ctx.dest_term) : nullptr;
  nn::VarPtr dest_repr =
      ctx.has_dest ? nn::Constant(ctx.dest_repr) : nullptr;
  nn::VarPtr traffic_term =
      ctx.has_traffic ? nn::Constant(ctx.traffic_term) : nullptr;
  nn::VarPtr traffic_repr =
      ctx.has_traffic ? nn::Constant(ctx.traffic_repr) : nullptr;
  auto state = gru_->InitialState(1);
  double log_lik = 0.0;
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    nn::VarPtr x =
        GruInput(segment_emb_->Forward({static_cast<int>(route[i])}),
                 dest_repr, traffic_repr);
    nn::VarPtr h = gru_->Step(x, &state);
    nn::VarPtr logits = StepLogits(h, dest_term, traffic_term);
    const int slot = net_.NeighborSlot(route[i], route[i + 1]);
    DEEPST_CHECK_GE(slot, 0);
    log_lik += ValidSlotLogProb(logits->value().data(),
                                net_.OutDegree(route[i]), slot);
  }
  return log_lik;
}

double DeepSTModel::ScoreRoute(const RouteQuery& query,
                               const traj::Route& route, util::Rng* rng) {
  PredictionContext ctx = MakeContext(query, rng);
  return ScoreRoute(ctx, route);
}

// -- Fast-path dispatch --------------------------------------------------------
// The public prediction/scoring API routes through the graph-free engine
// unless config.graph_inference pins the autodiff reference path.

traj::Route DeepSTModel::PredictRoute(const PredictionContext& ctx,
                                      SegmentId origin, util::Rng* rng) {
  if (config_.graph_inference) return PredictRouteReference(ctx, origin, rng);
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  return session->PredictRoute(ctx, origin, rng);
}

traj::Route DeepSTModel::PredictRouteBeam(const PredictionContext& ctx,
                                          SegmentId origin, util::Rng* rng,
                                          double deadline_ms,
                                          bool* budget_hit) {
  if (config_.graph_inference) {
    return PredictRouteBeamReference(ctx, origin, rng, deadline_ms,
                                     budget_hit);
  }
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  return session->PredictRouteBeam(ctx, origin, rng, deadline_ms, budget_hit);
}

double DeepSTModel::ScoreRoute(const PredictionContext& ctx,
                               const traj::Route& route) {
  if (config_.graph_inference) return ScoreRouteReference(ctx, route);
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  return session->ScoreRoute(ctx, route);
}

std::vector<int> DeepSTModel::TopSlotsAlongRoute(const PredictionContext& ctx,
                                                 const traj::Route& route) {
  // Harness entry point: always runs on the graph-free engine (the thing
  // whose precision is being evaluated), regardless of graph_inference.
  SessionLease session(this);
  std::vector<int> slots;
  session->TopSlotsAlongRoute(ctx, route, &slots);
  return slots;
}

std::vector<double> DeepSTModel::ScoreRoutes(
    const PredictionContext& ctx, const std::vector<traj::Route>& routes) {
  if (config_.graph_inference) {
    std::vector<double> scores;
    scores.reserve(routes.size());
    for (const traj::Route& route : routes) {
      scores.push_back(ScoreRouteReference(ctx, route));
    }
    return scores;
  }
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  return session->ScoreRoutes(ctx, routes);
}

double DeepSTModel::ScoreContinuation(const PredictionContext& ctx,
                                      const traj::Route& prefix,
                                      const traj::Route& continuation) {
  if (config_.graph_inference) {
    return ScoreContinuationReference(ctx, prefix, continuation);
  }
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  return session->ScoreContinuation(ctx, prefix, continuation);
}

std::vector<double> DeepSTModel::ScoreContinuations(
    const PredictionContext& ctx, const traj::Route& prefix,
    const std::vector<traj::Route>& candidates) {
  if (config_.graph_inference) {
    std::vector<double> scores;
    scores.reserve(candidates.size());
    for (const traj::Route& cand : candidates) {
      scores.push_back(ScoreContinuationReference(ctx, prefix, cand));
    }
    return scores;
  }
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  return session->ScoreContinuations(ctx, prefix, candidates);
}

void DeepSTModel::PredictRoutesBeamMulti(std::vector<PredictItem>* items,
                                         util::Rng* rng) {
  if (items->empty()) return;
  // Lock-step batching requires the graph-free engine and the deterministic
  // MAP beam (no rng draws); other configs fall back to per-item calls,
  // which produce the same per-item results by construction.
  const bool eligible = !config_.graph_inference && config_.map_prediction &&
                        !config_.sample_stop;
  if (!eligible) {
    for (PredictItem& item : *items) {
      item.budget_hit = false;
      item.route = PredictRouteBeam(*item.ctx, item.origin, rng,
                                    item.deadline_ms, &item.budget_hit);
    }
    return;
  }
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  session->PredictRoutesBeamMulti(items);
}

void DeepSTModel::ScoreRoutesMulti(std::vector<ScoreItem>* items) {
  if (items->empty()) return;
  if (config_.graph_inference) {
    for (ScoreItem& item : *items) {
      item.scores = ScoreRoutes(*item.ctx, *item.routes);
    }
    return;
  }
  SessionLease session(this);
  util::ThrowIfFaultPoint("infer.query");
  session->ScoreRoutesMulti(items);
}

bool ShouldStop(const roadnet::RoadNetwork& net, const geo::Point& dest,
                SegmentId segment, const DeepSTConfig& config,
                util::Rng* rng) {
  const double dist_m = net.ProjectToSegment(dest, segment).distance;
  if (config.sample_stop) {
    // Paper: s ~ Bernoulli(1 / (1 + d)) with d in km.
    const double f_s = 1.0 / (1.0 + dist_m / 1000.0);
    return rng->Bernoulli(f_s);
  }
  // Deterministic policy: stop when the destination projects very close to
  // the current segment, or when we are within the stop radius and every
  // possible continuation would move away from the destination (arrival at
  // the locally closest segment).
  if (dist_m <= 0.4 * config.stop_distance_m) return true;
  if (dist_m > config.stop_distance_m) return false;
  for (roadnet::SegmentId nxt : net.OutSegments(segment)) {
    if (net.ProjectToSegment(dest, nxt).distance < dist_m) return false;
  }
  return true;
}

}  // namespace core
}  // namespace deepst
