#ifndef DEEPST_CORE_CHECKPOINT_H_
#define DEEPST_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "core/trainer.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepst {
namespace core {

// Everything a killed training run needs to continue bitwise identically to
// an uninterrupted one: model parameters, optimizer moments, the RNG stream,
// the epoch cursor and early-stopping bookkeeping, the per-epoch history (so
// the resumed TrainResult covers the whole run), and the best-epoch
// parameter snapshot. See docs/checkpointing.md for the file layout.
struct TrainingCheckpoint {
  // Epoch the resumed run should execute next (epochs [0, next_epoch) are
  // already done and recorded in `history`).
  int64_t next_epoch = 0;

  // Early-stopping bookkeeping.
  int64_t best_epoch = 0;
  double best_val = 0.0;  // +inf when no epoch has finished yet
  int64_t since_best = 0;

  // Divergence-guard bookkeeping (retries already consumed).
  int64_t retries_used = 0;

  util::Rng::State rng;

  // Per-epoch stats of completed epochs (the resumed run's TrainResult
  // covers the whole run, not just the tail).
  std::vector<EpochStats> history;

  nn::OptimizerState optimizer;

  // Live model parameters at the epoch boundary.
  std::vector<nn::NamedTensor> params;
  // Snapshot of the best-validation epoch's parameters (empty until the
  // first completed epoch).
  std::vector<nn::NamedTensor> best_params;
  // Non-trainable module state (batch-norm running statistics): evolves
  // every training batch and feeds eval-mode validation, so omitting it
  // would make a resumed run's val metrics -- and thus early stopping --
  // drift from the uninterrupted run's.
  std::vector<nn::NamedTensor> buffers;
  std::vector<nn::NamedTensor> best_buffers;
};

// Serializes `ckpt` to `path` atomically: the bytes are staged to
// `path.tmp`, fsync'd, then renamed over `path` (and the parent directory
// fsync'd), so a crash mid-save never leaves a half-written file under the
// final name. The file carries a magic/version header and a trailing CRC32
// over everything before it.
util::Status SaveTrainingCheckpoint(const TrainingCheckpoint& ckpt,
                                    const std::string& path);

// Loads and verifies `path`. Truncation, a bad magic/version, or any bit
// flip fails the CRC (or a bounds check) and returns an error -- never a
// crash or a partially-applied checkpoint.
util::StatusOr<TrainingCheckpoint> LoadTrainingCheckpoint(
    const std::string& path);

// Human-readable report for `deepst_cli inspect`: version, CRC status, epoch
// cursor and parameter-tensor counts. InvalidArgument on a non-checkpoint
// magic. `healthy` (optional) is set false when the checkpoint describes but
// would not load (CRC or structural failure).
util::StatusOr<std::string> DescribeCheckpointFile(const std::string& path,
                                                   bool* healthy = nullptr);

// Rotating latest/prev/best checkpoint files under one directory. The
// rotation means there is always at least one intact checkpoint on disk even
// if the process dies during a save, and a corrupt `latest` (torn write,
// disk error) is skipped in favor of `prev`.
class CheckpointManager {
 public:
  // Creates `dir` (and missing parents) if needed; Ok to construct against
  // an existing directory with checkpoints in it.
  explicit CheckpointManager(std::string dir);

  // Directory creation outcome from the constructor (saves also re-report
  // failures, but callers can fail fast on an unusable directory).
  const util::Status& dir_status() const { return dir_status_; }

  std::string LatestPath() const { return dir_ + "/ckpt_latest.bin"; }
  std::string PrevPath() const { return dir_ + "/ckpt_prev.bin"; }
  std::string BestPath() const { return dir_ + "/ckpt_best.bin"; }

  // Rotates latest -> prev, then atomically writes `ckpt` as latest.
  util::Status WriteLatest(const TrainingCheckpoint& ckpt);

  // Atomically writes `ckpt` as best (no rotation).
  util::Status WriteBest(const TrainingCheckpoint& ckpt);

  // Loads `latest`, falling back to `prev` when `latest` is missing,
  // truncated, or fails its CRC. NotFound when neither file yields a valid
  // checkpoint. `loaded_path`, when non-null, receives the file used.
  util::StatusOr<TrainingCheckpoint> LoadLatestGood(
      std::string* loaded_path = nullptr) const;

 private:
  std::string dir_;
  util::Status dir_status_;
};

}  // namespace core
}  // namespace deepst

#endif  // DEEPST_CORE_CHECKPOINT_H_
