#include "core/serving.h"

#include <cmath>
#include <exception>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace deepst {
namespace core {

namespace {

bool OutsideWithSlack(const geo::BoundingBox& box, const geo::Point& p,
                      double slack_m) {
  return p.x < box.min.x - slack_m || p.x > box.max.x + slack_m ||
         p.y < box.min.y - slack_m || p.y > box.max.y + slack_m;
}

}  // namespace

std::string DegradationsToString(uint8_t degradations) {
  if (degradations == kDegradationNone) return "none";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (degradations & kDegradationTrafficPriorMean) append("traffic_prior_mean");
  if (degradations & kDegradationUniformProxy) append("uniform_proxy");
  if (degradations & kDegradationSnappedOrigin) append("snapped_origin");
  if (degradations & kDegradationDeadlineBudget) append("deadline_budget");
  return out;
}

ServingContext::ServingContext(DeepSTModel* model,
                               const roadnet::SpatialIndex* index,
                               const ServingConfig& config)
    : model_(model), index_(index), config_(config) {}

util::Status ServingContext::ResolveQuery(RouteQuery* query,
                                          bool origin_required,
                                          ContextOptions* options,
                                          uint8_t* degradations) {
  const roadnet::RoadNetwork& net = model_->network();
  const DeepSTConfig& mc = model_->config();

  // -- Snapshot window ---------------------------------------------------------
  if (!std::isfinite(query->start_time_s) || query->start_time_s < 0.0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "start_time_s %f is not a sane snapshot time", query->start_time_s));
  }

  // -- Origin ------------------------------------------------------------------
  if (query->origin == roadnet::kInvalidSegment && query->has_origin_point) {
    if (!std::isfinite(query->origin_point.x) ||
        !std::isfinite(query->origin_point.y)) {
      return util::Status::InvalidArgument("origin point is not finite");
    }
    if (config_.strict) {
      return util::Status::FailedPrecondition(
          "origin is not a network segment; strict mode refuses to snap");
    }
    const roadnet::SegmentCandidate snap = index_->Nearest(query->origin_point);
    if (snap.segment == roadnet::kInvalidSegment ||
        snap.projection.distance > config_.origin_snap_radius_m) {
      return util::Status::NotFound(util::StrFormat(
          "no segment within %.0f m of origin point (%.1f, %.1f)",
          config_.origin_snap_radius_m, query->origin_point.x,
          query->origin_point.y));
    }
    query->origin = snap.segment;
    *degradations |= kDegradationSnappedOrigin;
  }
  if (origin_required &&
      (query->origin < 0 || query->origin >= net.num_segments())) {
    return util::Status::InvalidArgument(util::StrFormat(
        "origin segment %d out of range (network has %d segments)",
        static_cast<int>(query->origin), net.num_segments()));
  }

  // -- Destination -------------------------------------------------------------
  if (mc.destination_mode == DestinationMode::kProxies) {
    if (!std::isfinite(query->destination.x) ||
        !std::isfinite(query->destination.y)) {
      return util::Status::InvalidArgument("destination is not finite");
    }
    if (OutsideWithSlack(net.bounds(), query->destination,
                         config_.bounds_slack_m)) {
      if (config_.strict) {
        return util::Status::FailedPrecondition(util::StrFormat(
            "destination (%.1f, %.1f) outside the network; strict mode "
            "refuses the uniform-proxy fallback",
            query->destination.x, query->destination.y));
      }
      options->uniform_proxy = true;
      *degradations |= kDegradationUniformProxy;
    }
  } else if (mc.destination_mode == DestinationMode::kFinalSegment) {
    if (query->final_segment < 0 ||
        query->final_segment >= net.num_segments()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "final_segment %d out of range (kFinalSegment mode requires a "
          "valid final segment)",
          static_cast<int>(query->final_segment)));
    }
  }

  // -- Traffic snapshot --------------------------------------------------------
  if (mc.use_traffic) {
    traffic::TrafficTensorCache* cache = model_->traffic_cache();
    const bool missing = !cache->HasObservations(query->start_time_s);
    const bool stale =
        query->start_time_s - cache->latest_observation_time() >
        config_.max_snapshot_age_s;
    if (missing || stale) {
      if (config_.strict) {
        return util::Status::FailedPrecondition(util::StrFormat(
            "traffic snapshot %s for t=%.0f; strict mode refuses the "
            "prior-mean fallback",
            missing ? "missing" : "stale", query->start_time_s));
      }
      options->traffic_prior_mean = true;
      *degradations |= kDegradationTrafficPriorMean;
    }
  }
  return util::Status::Ok();
}

util::StatusOr<ServingResult> ServingContext::Predict(const RouteQuery& query) {
  util::Stopwatch sw;
  ServingResult result;
  RouteQuery resolved = query;
  ContextOptions options;
  DEEPST_RETURN_IF_ERROR(ResolveQuery(&resolved, /*origin_required=*/true,
                                      &options, &result.degradations));
  // Everything past this point runs model code that may throw (injected
  // query faults, allocation failure); convert to Status so a single bad
  // query can never take the process down.
  try {
    util::Rng rng(config_.rng_seed);
    PredictionContext ctx = model_->MakeContext(resolved, &rng, options);
    if (config_.deadline_ms > 0.0 && model_->config().map_prediction) {
      bool budget_hit = false;
      result.route = model_->PredictRouteBeam(ctx, resolved.origin, &rng,
                                              config_.deadline_ms,
                                              &budget_hit);
      if (budget_hit) result.degradations |= kDegradationDeadlineBudget;
    } else {
      result.route = model_->PredictRoute(ctx, resolved.origin, &rng);
    }
  } catch (const std::exception& e) {
    return util::Status::Internal(
        util::StrFormat("query execution failed: %s", e.what()));
  }
  result.degraded = result.degradations != kDegradationNone;
  result.latency_ms = sw.ElapsedMillis();
  return result;
}

util::StatusOr<ServingResult> ServingContext::ScoreRoute(
    const RouteQuery& query, const traj::Route& route) {
  util::Stopwatch sw;
  const roadnet::RoadNetwork& net = model_->network();
  if (route.empty()) {
    return util::Status::InvalidArgument("route is empty");
  }
  for (roadnet::SegmentId s : route) {
    if (s < 0 || s >= net.num_segments()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "route references segment %d out of range", static_cast<int>(s)));
    }
  }
  ServingResult result;
  RouteQuery resolved = query;
  // Scoring does not generate from the origin; default it to the route head
  // so callers can score without resolving one.
  if (resolved.origin == roadnet::kInvalidSegment &&
      !resolved.has_origin_point) {
    resolved.origin = route.front();
  }
  ContextOptions options;
  DEEPST_RETURN_IF_ERROR(ResolveQuery(&resolved, /*origin_required=*/false,
                                      &options, &result.degradations));
  try {
    util::Rng rng(config_.rng_seed);
    PredictionContext ctx = model_->MakeContext(resolved, &rng, options);
    result.score = model_->ScoreRoute(ctx, route);
  } catch (const std::exception& e) {
    return util::Status::Internal(
        util::StrFormat("query execution failed: %s", e.what()));
  }
  result.degraded = result.degradations != kDegradationNone;
  result.latency_ms = sw.ElapsedMillis();
  return result;
}

}  // namespace core
}  // namespace deepst
