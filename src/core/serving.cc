#include "core/serving.h"

#include <cmath>
#include <exception>
#include <utility>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace deepst {
namespace core {

namespace {

bool OutsideWithSlack(const geo::BoundingBox& box, const geo::Point& p,
                      double slack_m) {
  return p.x < box.min.x - slack_m || p.x > box.max.x + slack_m ||
         p.y < box.min.y - slack_m || p.y > box.max.y + slack_m;
}

}  // namespace

std::string DegradationsToString(uint8_t degradations) {
  if (degradations == kDegradationNone) return "none";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (degradations & kDegradationTrafficPriorMean) append("traffic_prior_mean");
  if (degradations & kDegradationUniformProxy) append("uniform_proxy");
  if (degradations & kDegradationSnappedOrigin) append("snapped_origin");
  if (degradations & kDegradationDeadlineBudget) append("deadline_budget");
  if (degradations & kDegradationOverlayDropped) append("overlay_dropped");
  return out;
}

ServingContext::ServingContext(DeepSTModel* model,
                               const roadnet::SpatialIndex* index,
                               const ServingConfig& config,
                               traffic::SnapshotStore* store)
    : model_(model), index_(index), config_(config), store_(store) {}

traffic::SnapshotPin ServingContext::PinSnapshot(ContextOptions* options,
                                                 ServingResult* result) {
  if (store_ == nullptr) return traffic::SnapshotPin();
  // Admission is the pinning point: from here to the last beam step the
  // query reads this immutable generation, no matter how many swaps land.
  traffic::SnapshotPin pin = store_->Acquire();
  options->traffic_cache = pin.cache();
  result->snapshot_generation = pin.generation();
  return pin;
}

util::Status ServingContext::ResolveQuery(RouteQuery* query,
                                          bool origin_required,
                                          ContextOptions* options,
                                          uint8_t* degradations,
                                          bool* what_if) {
  const roadnet::RoadNetwork& net = model_->network();
  const DeepSTConfig& mc = model_->config();

  // -- Snapshot window ---------------------------------------------------------
  if (!std::isfinite(query->start_time_s) || query->start_time_s < 0.0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "start_time_s %f is not a sane snapshot time", query->start_time_s));
  }

  // -- Origin ------------------------------------------------------------------
  if (query->origin == roadnet::kInvalidSegment && query->has_origin_point) {
    if (!std::isfinite(query->origin_point.x) ||
        !std::isfinite(query->origin_point.y)) {
      return util::Status::InvalidArgument("origin point is not finite");
    }
    if (config_.strict) {
      return util::Status::FailedPrecondition(
          "origin is not a network segment; strict mode refuses to snap");
    }
    const roadnet::SegmentCandidate snap = index_->Nearest(query->origin_point);
    if (snap.segment == roadnet::kInvalidSegment ||
        snap.projection.distance > config_.origin_snap_radius_m) {
      return util::Status::NotFound(util::StrFormat(
          "no segment within %.0f m of origin point (%.1f, %.1f)",
          config_.origin_snap_radius_m, query->origin_point.x,
          query->origin_point.y));
    }
    query->origin = snap.segment;
    *degradations |= kDegradationSnappedOrigin;
  }
  if (origin_required &&
      (query->origin < 0 || query->origin >= net.num_segments())) {
    return util::Status::InvalidArgument(util::StrFormat(
        "origin segment %d out of range (network has %d segments)",
        static_cast<int>(query->origin), net.num_segments()));
  }

  // -- Destination -------------------------------------------------------------
  if (mc.destination_mode == DestinationMode::kProxies) {
    if (!std::isfinite(query->destination.x) ||
        !std::isfinite(query->destination.y)) {
      return util::Status::InvalidArgument("destination is not finite");
    }
    if (OutsideWithSlack(net.bounds(), query->destination,
                         config_.bounds_slack_m)) {
      if (config_.strict) {
        return util::Status::FailedPrecondition(util::StrFormat(
            "destination (%.1f, %.1f) outside the network; strict mode "
            "refuses the uniform-proxy fallback",
            query->destination.x, query->destination.y));
      }
      options->uniform_proxy = true;
      *degradations |= kDegradationUniformProxy;
    }
  } else if (mc.destination_mode == DestinationMode::kFinalSegment) {
    if (query->final_segment < 0 ||
        query->final_segment >= net.num_segments()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "final_segment %d out of range (kFinalSegment mode requires a "
          "valid final segment)",
          static_cast<int>(query->final_segment)));
    }
  }

  // -- Traffic snapshot --------------------------------------------------------
  if (mc.use_traffic) {
    // Staleness is judged against the generation the query pinned at
    // admission, not whatever the store publishes mid-query.
    traffic::TrafficTensorCache* cache = options->traffic_cache != nullptr
                                             ? options->traffic_cache
                                             : model_->traffic_cache();
    const bool missing = !cache->HasObservations(query->start_time_s);
    const bool stale =
        query->start_time_s - cache->latest_observation_time() >
        config_.max_snapshot_age_s;
    if (missing || stale) {
      if (config_.strict) {
        return util::Status::FailedPrecondition(util::StrFormat(
            "traffic snapshot %s for t=%.0f; strict mode refuses the "
            "prior-mean fallback",
            missing ? "missing" : "stale", query->start_time_s));
      }
      options->traffic_prior_mean = true;
      *degradations |= kDegradationTrafficPriorMean;
    }
  }

  // -- What-if overlay ---------------------------------------------------------
  if (!query->overlay.empty()) {
    if (!mc.use_traffic) {
      return util::Status::InvalidArgument(
          "what-if overlay requested on a model variant without traffic "
          "conditioning");
    }
    DEEPST_RETURN_IF_ERROR(traffic::ValidateOverlay(query->overlay));
    if (options->traffic_prior_mean) {
      // The prior-mean fallback already fired (under strict it refused
      // above, so an overlay can never mask a real degradation): there is
      // no observed tensor to edit. Serve reality under the prior and say
      // so, rather than pretending the scenario applied.
      *degradations |= kDegradationOverlayDropped;
    } else {
      options->overlay = &query->overlay;
      if (what_if != nullptr) *what_if = true;
    }
  }
  return util::Status::Ok();
}

util::StatusOr<ServingResult> ServingContext::PredictInternal(
    const RouteQuery& query, double deadline_ms) {
  util::Stopwatch sw;
  ServingResult result;
  RouteQuery resolved = query;
  ContextOptions options;
  const traffic::SnapshotPin pin = PinSnapshot(&options, &result);
  DEEPST_RETURN_IF_ERROR(ResolveQuery(&resolved, /*origin_required=*/true,
                                      &options, &result.degradations,
                                      &result.what_if));
  // Everything past this point runs model code that may throw (injected
  // query faults, allocation failure); convert to Status so a single bad
  // query can never take the process down.
  try {
    util::Rng rng(config_.rng_seed);
    PredictionContext ctx = model_->MakeContext(resolved, &rng, options);
    if (deadline_ms > 0.0 && model_->config().map_prediction) {
      bool budget_hit = false;
      result.route = model_->PredictRouteBeam(ctx, resolved.origin, &rng,
                                              deadline_ms, &budget_hit);
      if (budget_hit) result.degradations |= kDegradationDeadlineBudget;
    } else {
      result.route = model_->PredictRoute(ctx, resolved.origin, &rng);
    }
  } catch (const std::exception& e) {
    return util::Status::Internal(
        util::StrFormat("query execution failed: %s", e.what()));
  }
  result.degraded = result.degradations != kDegradationNone;
  result.latency_ms = sw.ElapsedMillis();
  return result;
}

util::StatusOr<ServingResult> ServingContext::Predict(const RouteQuery& query) {
  util::StatusOr<ServingResult> outcome =
      PredictInternal(query, config_.deadline_ms);
  RecordOutcome(outcome);
  return outcome;
}

util::StatusOr<ServingResult> ServingContext::ScoreRoute(
    const RouteQuery& query, const traj::Route& route) {
  util::Stopwatch sw;
  const roadnet::RoadNetwork& net = model_->network();
  auto fail = [this](util::Status status) -> util::StatusOr<ServingResult> {
    util::StatusOr<ServingResult> outcome(std::move(status));
    RecordOutcome(outcome);
    return outcome;
  };
  if (route.empty()) {
    return fail(util::Status::InvalidArgument("route is empty"));
  }
  for (roadnet::SegmentId s : route) {
    if (s < 0 || s >= net.num_segments()) {
      return fail(util::Status::InvalidArgument(util::StrFormat(
          "route references segment %d out of range", static_cast<int>(s))));
    }
  }
  ServingResult result;
  RouteQuery resolved = query;
  // Scoring does not generate from the origin; default it to the route head
  // so callers can score without resolving one.
  if (resolved.origin == roadnet::kInvalidSegment &&
      !resolved.has_origin_point) {
    resolved.origin = route.front();
  }
  ContextOptions options;
  const traffic::SnapshotPin pin = PinSnapshot(&options, &result);
  {
    util::Status status = ResolveQuery(&resolved, /*origin_required=*/false,
                                       &options, &result.degradations,
                                       &result.what_if);
    if (!status.ok()) return fail(std::move(status));
  }
  try {
    util::Rng rng(config_.rng_seed);
    PredictionContext ctx = model_->MakeContext(resolved, &rng, options);
    result.score = model_->ScoreRoute(ctx, route);
  } catch (const std::exception& e) {
    return fail(util::Status::Internal(
        util::StrFormat("query execution failed: %s", e.what())));
  }
  result.degraded = result.degradations != kDegradationNone;
  result.latency_ms = sw.ElapsedMillis();
  util::StatusOr<ServingResult> outcome(std::move(result));
  RecordOutcome(outcome);
  return outcome;
}

util::Status ServingContext::ValidateScoreRoutes(
    const std::vector<traj::Route>& routes) {
  if (routes.empty()) {
    return util::Status::InvalidArgument("score request has no routes");
  }
  const roadnet::RoadNetwork& net = model_->network();
  for (const traj::Route& route : routes) {
    if (route.empty()) {
      return util::Status::InvalidArgument("route is empty");
    }
    for (roadnet::SegmentId s : route) {
      if (s < 0 || s >= net.num_segments()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "route references segment %d out of range", static_cast<int>(s)));
      }
    }
  }
  return util::Status::Ok();
}

util::StatusOr<ServingResult> ServingContext::ExecuteIngest(
    const ServingRequest& request) {
  util::Stopwatch sw;
  if (store_ == nullptr) {
    return util::Status::FailedPrecondition(
        "no live traffic store attached; ingest unavailable");
  }
  traffic::IngestReport report;
  DEEPST_RETURN_IF_ERROR(store_->Ingest(request.observations, &report));
  // Returning OK here IS the durability ack: the WAL append completed.
  ServingResult result;
  result.ingested = report.accepted;
  result.ingest_rejected = report.rejected;
  result.snapshot_generation = store_->generation();
  result.latency_ms = sw.ElapsedMillis();
  return result;
}

util::StatusOr<ServingResult> ServingContext::ExecuteOne(
    const ServingRequest& request) {
  const double deadline =
      request.deadline_ms > 0.0 ? request.deadline_ms : config_.deadline_ms;
  if (request.kind == ServingRequest::Kind::kIngest) {
    return ExecuteIngest(request);
  }
  if (request.kind == ServingRequest::Kind::kPredict) {
    return PredictInternal(request.query, deadline);
  }
  util::Stopwatch sw;
  DEEPST_RETURN_IF_ERROR(ValidateScoreRoutes(request.routes));
  ServingResult result;
  RouteQuery resolved = request.query;
  if (resolved.origin == roadnet::kInvalidSegment &&
      !resolved.has_origin_point) {
    resolved.origin = request.routes.front().front();
  }
  ContextOptions options;
  const traffic::SnapshotPin pin = PinSnapshot(&options, &result);
  DEEPST_RETURN_IF_ERROR(ResolveQuery(&resolved, /*origin_required=*/false,
                                      &options, &result.degradations,
                                      &result.what_if));
  try {
    util::Rng rng(config_.rng_seed);
    PredictionContext ctx = model_->MakeContext(resolved, &rng, options);
    result.scores = model_->ScoreRoutes(ctx, request.routes);
  } catch (const std::exception& e) {
    return util::Status::Internal(
        util::StrFormat("query execution failed: %s", e.what()));
  }
  result.score = result.scores.empty() ? 0.0 : result.scores.front();
  result.degraded = result.degradations != kDegradationNone;
  result.latency_ms = sw.ElapsedMillis();
  return result;
}

std::vector<util::StatusOr<ServingResult>> ServingContext::ExecuteBatch(
    std::vector<ServingRequest>* requests) {
  util::Stopwatch sw;
  const size_t n = requests->size();
  std::vector<util::StatusOr<ServingResult>> results(n, ServingResult{});
  if (n == 0) return results;

  // Cross-query coalescing requires the graph-free deterministic MAP config
  // (no rng draws in generation, so batch composition cannot perturb any
  // stream). Other configs execute request by request -- same per-request
  // results, just without the shared batch.
  const DeepSTConfig& mc = model_->config();
  const bool batchable =
      !mc.graph_inference && mc.map_prediction && !mc.sample_stop;
  if (!batchable) {
    for (size_t i = 0; i < n; ++i) {
      results[i] = ExecuteOne((*requests)[i]);
      RecordOutcome(results[i]);
    }
    return results;
  }

  // Stage 1: validate, resolve and build every request's context
  // individually. A request that fails here only fails its own slot.
  // Ingest requests execute right here -- their work is a WAL append, not
  // an inference call, so they never ride the coalesced model batch.
  struct Prepared {
    RouteQuery resolved;
    ContextOptions options;
    PredictionContext ctx;
    traffic::SnapshotPin pin;  // held until the request's result is built
    uint8_t degradations = kDegradationNone;
    bool what_if = false;
    uint64_t generation = 0;
  };
  std::vector<Prepared> prep(n);
  std::vector<size_t> predict_ix;
  std::vector<size_t> score_ix;
  for (size_t i = 0; i < n; ++i) {
    const ServingRequest& req = (*requests)[i];
    Prepared& p = prep[i];
    if (req.kind == ServingRequest::Kind::kIngest) {
      results[i] = ExecuteIngest(req);
      RecordOutcome(results[i]);
      continue;
    }
    const bool is_score = req.kind == ServingRequest::Kind::kScore;
    p.resolved = req.query;
    if (is_score) {
      util::Status status = ValidateScoreRoutes(req.routes);
      if (!status.ok()) {
        results[i] = std::move(status);
        RecordOutcome(results[i]);
        continue;
      }
      if (p.resolved.origin == roadnet::kInvalidSegment &&
          !p.resolved.has_origin_point) {
        p.resolved.origin = req.routes.front().front();
      }
    }
    {
      ServingResult pin_stamp;
      p.pin = PinSnapshot(&p.options, &pin_stamp);
      p.generation = pin_stamp.snapshot_generation;
    }
    util::Status status = ResolveQuery(&p.resolved, !is_score, &p.options,
                                       &p.degradations, &p.what_if);
    if (!status.ok()) {
      results[i] = std::move(status);
      RecordOutcome(results[i]);
      continue;
    }
    try {
      util::Rng rng(config_.rng_seed);
      p.ctx = model_->MakeContext(p.resolved, &rng, p.options);
      (is_score ? score_ix : predict_ix).push_back(i);
    } catch (const std::exception& e) {
      results[i] = util::Status::Internal(
          util::StrFormat("query execution failed: %s", e.what()));
      RecordOutcome(results[i]);
    }
  }

  // Stage 2: one coalesced batch per kind. If the shared call throws (an
  // injected fault, allocation failure), re-execute every rider
  // individually: only the poisoned request fails, with its own Status.
  if (!predict_ix.empty()) {
    std::vector<PredictItem> items(predict_ix.size());
    for (size_t k = 0; k < predict_ix.size(); ++k) {
      const size_t i = predict_ix[k];
      const ServingRequest& req = (*requests)[i];
      items[k].ctx = &prep[i].ctx;
      items[k].origin = prep[i].resolved.origin;
      items[k].deadline_ms =
          req.deadline_ms > 0.0 ? req.deadline_ms : config_.deadline_ms;
    }
    bool batch_ok = true;
    try {
      model_->PredictRoutesBeamMulti(&items);
    } catch (const std::exception&) {
      batch_ok = false;
    }
    for (size_t k = 0; k < predict_ix.size(); ++k) {
      const size_t i = predict_ix[k];
      if (batch_ok) {
        ServingResult result;
        result.degradations = prep[i].degradations;
        if (items[k].budget_hit) {
          result.degradations |= kDegradationDeadlineBudget;
        }
        result.route = std::move(items[k].route);
        result.degraded = result.degradations != kDegradationNone;
        result.what_if = prep[i].what_if;
        result.snapshot_generation = prep[i].generation;
        result.latency_ms = sw.ElapsedMillis();
        results[i] = std::move(result);
      } else {
        results[i] = ExecuteOne((*requests)[i]);
      }
      prep[i].pin.Release();
      RecordOutcome(results[i]);
    }
  }
  if (!score_ix.empty()) {
    std::vector<ScoreItem> items(score_ix.size());
    for (size_t k = 0; k < score_ix.size(); ++k) {
      const size_t i = score_ix[k];
      items[k].ctx = &prep[i].ctx;
      items[k].routes = &(*requests)[i].routes;
    }
    bool batch_ok = true;
    try {
      model_->ScoreRoutesMulti(&items);
    } catch (const std::exception&) {
      batch_ok = false;
    }
    for (size_t k = 0; k < score_ix.size(); ++k) {
      const size_t i = score_ix[k];
      if (batch_ok) {
        ServingResult result;
        result.degradations = prep[i].degradations;
        result.scores = std::move(items[k].scores);
        result.score = result.scores.empty() ? 0.0 : result.scores.front();
        result.degraded = result.degradations != kDegradationNone;
        result.what_if = prep[i].what_if;
        result.snapshot_generation = prep[i].generation;
        result.latency_ms = sw.ElapsedMillis();
        results[i] = std::move(result);
      } else {
        results[i] = ExecuteOne((*requests)[i]);
      }
      prep[i].pin.Release();
      RecordOutcome(results[i]);
    }
  }
  return results;
}

void ServingContext::RecordOutcome(
    const util::StatusOr<ServingResult>& outcome) {
  if (!outcome.ok()) {
    n_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const ServingResult& r = outcome.value();
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  if (r.degradations != kDegradationNone) {
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.degradations & kDegradationTrafficPriorMean) {
    n_traffic_prior_mean_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.degradations & kDegradationUniformProxy) {
    n_uniform_proxy_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.degradations & kDegradationSnappedOrigin) {
    n_snapped_origin_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.degradations & kDegradationDeadlineBudget) {
    n_deadline_budget_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.degradations & kDegradationOverlayDropped) {
    n_overlay_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.what_if) {
    n_what_if_.fetch_add(1, std::memory_order_relaxed);
  }
}

ServingStats ServingContext::stats() const {
  ServingStats s;
  s.queries = n_queries_.load(std::memory_order_relaxed);
  s.failures = n_failures_.load(std::memory_order_relaxed);
  s.degraded = n_degraded_.load(std::memory_order_relaxed);
  s.traffic_prior_mean = n_traffic_prior_mean_.load(std::memory_order_relaxed);
  s.uniform_proxy = n_uniform_proxy_.load(std::memory_order_relaxed);
  s.snapped_origin = n_snapped_origin_.load(std::memory_order_relaxed);
  s.deadline_budget = n_deadline_budget_.load(std::memory_order_relaxed);
  s.overlay_dropped = n_overlay_dropped_.load(std::memory_order_relaxed);
  s.what_if = n_what_if_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace core
}  // namespace deepst
