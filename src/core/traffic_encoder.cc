#include "core/traffic_encoder.h"

#include "nn/conv_ops.h"
#include "nn/ops.h"

namespace deepst {
namespace core {

namespace o = nn::ops;

TrafficEncoder::TrafficEncoder(int rows, int cols, int channels,
                               int traffic_dim, int mlp_hidden,
                               util::Rng* rng)
    : rows_(rows), cols_(cols), traffic_dim_(traffic_dim) {
  DEEPST_CHECK_GE(rows, 4);
  DEEPST_CHECK_GE(cols, 4);
  block1_ = std::make_unique<nn::ConvBlock>(2, channels, 3, 2, 1, rng);
  block2_ = std::make_unique<nn::ConvBlock>(channels, channels, 3, 1, 1, rng);
  block3_ = std::make_unique<nn::ConvBlock>(channels, channels, 3, 1, 1, rng);
  AddSubmodule("block1", block1_.get());
  AddSubmodule("block2", block2_.get());
  AddSubmodule("block3", block3_.get());
  // Probe the trunk once to learn the flattened feature width.
  {
    nn::VarPtr probe = nn::Constant(nn::Tensor::Zeros({1, 2, rows, cols}));
    nn::VarPtr f = Features(probe, /*training=*/false);
    feature_dim_ = f->value().dim(1);
  }
  shared_ = std::make_unique<nn::LinearLayer>(feature_dim_, mlp_hidden, rng);
  mu_head_ = std::make_unique<nn::LinearLayer>(mlp_hidden, traffic_dim, rng);
  logvar_head_ =
      std::make_unique<nn::LinearLayer>(mlp_hidden, traffic_dim, rng);
  AddSubmodule("shared", shared_.get());
  AddSubmodule("mu", mu_head_.get());
  AddSubmodule("logvar", logvar_head_.get());
}

nn::VarPtr TrafficEncoder::Features(const nn::VarPtr& x, bool training) {
  nn::VarPtr h = block1_->Forward(x, training);
  h = block2_->Forward(h, training);
  h = block3_->Forward(h, training);
  h = o::AvgPool2d(h, 2);
  const auto& shape = h->value().shape();
  return o::Reshape(h, {shape[0], shape[1] * shape[2] * shape[3]});
}

TrafficPosterior TrafficEncoder::Encode(
    const std::vector<const nn::Tensor*>& tensors, bool training) {
  DEEPST_CHECK(!tensors.empty());
  const int64_t batch = static_cast<int64_t>(tensors.size());
  nn::Tensor stacked({batch, 2, rows_, cols_});
  const int64_t per = 2ll * rows_ * cols_;
  for (int64_t b = 0; b < batch; ++b) {
    const nn::Tensor& t = *tensors[static_cast<size_t>(b)];
    DEEPST_CHECK_EQ(t.numel(), per);
    std::copy(t.data(), t.data() + per, stacked.data() + b * per);
  }
  nn::VarPtr f = Features(nn::Constant(std::move(stacked)), training);
  nn::VarPtr h = o::LeakyRelu(shared_->Forward(f), 0.01f);
  TrafficPosterior post;
  post.mu = mu_head_->Forward(h);
  // Shift the initial posterior towards small variance (sigma ~ e^{-1.5} ~
  // 0.22): an untrained head would otherwise emit sigma ~ 1, flooding the
  // route decoder with noise and stalling optimization. The KL term can
  // still widen the posterior where warranted.
  post.logvar = o::ScalarAdd(logvar_head_->Forward(h), -3.0f);
  return post;
}

}  // namespace core
}  // namespace deepst
