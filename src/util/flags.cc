#include "util/flags.h"

#include <cstdlib>

namespace deepst {
namespace util {

StatusOr<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid option");
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not an option; otherwise a bool
    // flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[i + 1];
      ++i;
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

StatusOr<int64_t> Flags::GetInt(const std::string& name,
                                int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> Flags::GetDouble(const std::string& name,
                                  double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [k, v] : values_) names.push_back(k);
  return names;
}

}  // namespace util
}  // namespace deepst
