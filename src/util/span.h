#ifndef DEEPST_UTIL_SPAN_H_
#define DEEPST_UTIL_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace deepst {
namespace util {

// Minimal read-only view over a contiguous array. The roadnet layer hands
// these out instead of `const std::vector<T>&` so the backing storage can be
// either heap-owned or a struct view straight into an mmap'ed format-v3
// file (docs/formats.md) without the call sites caring.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  // Implicit, so existing vector-producing code keeps working at call sites
  // that accept a Span.
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}
  // For literal arguments at call sites (the list only lives to the end of
  // the full expression -- never store a Span built from one).
  Span(std::initializer_list<T> il) : data_(il.begin()), size_(il.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
bool operator!=(Span<T> a, Span<T> b) {
  return !(a == b);
}

template <typename T>
bool operator==(Span<T> a, const std::vector<T>& b) {
  return a == Span<T>(b);
}

template <typename T>
bool operator==(const std::vector<T>& a, Span<T> b) {
  return Span<T>(a) == b;
}

// Array storage that is either owned (a std::vector filled during
// construction) or borrowed (a pointer into externally kept-alive memory,
// e.g. an mmap'ed file). RoadNetwork and SpatialIndex store their flat
// sections through this so the same query code runs over both.
template <typename T>
class ArrayView {
 public:
  ArrayView() = default;

  // Owned-mode views must re-point at their own copy of the vector; borrowed
  // views just share the external pointer.
  ArrayView(const ArrayView& o) { *this = o; }
  ArrayView& operator=(const ArrayView& o) {
    if (this == &o) return *this;
    owned_ = o.owned_;
    if (o.data_ == nullptr) {
      // Still under construction: stay unfrozen.
      data_ = nullptr;
      size_ = 0;
    } else if (o.owned()) {
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      data_ = o.data_;
      size_ = o.size_;
    }
    return *this;
  }
  ArrayView(ArrayView&& o) noexcept { *this = std::move(o); }
  ArrayView& operator=(ArrayView&& o) noexcept {
    if (this == &o) return *this;
    const bool unfrozen = o.data_ == nullptr;
    const bool was_owned = o.owned();
    owned_ = std::move(o.owned_);
    if (unfrozen) {
      data_ = nullptr;
      size_ = 0;
    } else if (was_owned) {
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      data_ = o.data_;
      size_ = o.size_;
    }
    o.owned_.clear();
    o.data_ = nullptr;
    o.size_ = 0;
    return *this;
  }

  // Owned mode: mutate through vec() while building, then Freeze().
  std::vector<T>& vec() { return owned_; }
  void Freeze() {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  // Borrowed mode: the caller guarantees [data, data + size) outlives this.
  void Adopt(const T* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = size;
  }

  const T* data() const { return data_; }
  // Before Freeze()/Adopt(), reports the size of the vector under
  // construction so counting queries work mid-build.
  size_t size() const { return data_ != nullptr ? size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  Span<T> span() const { return Span<T>(data_, size_); }
  bool owned() const { return size_ == 0 || data_ == owned_.data(); }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_SPAN_H_
