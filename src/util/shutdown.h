#ifndef DEEPST_UTIL_SHUTDOWN_H_
#define DEEPST_UTIL_SHUTDOWN_H_

namespace deepst {
namespace util {

// Process-wide graceful-shutdown flag shared by every long-running driver
// (the serve daemon's drain, the trainer's final checkpoint flush). A signal
// handler may only touch async-signal-safe state, so the flag is a single
// sig_atomic_t; everything that wants to stop cleanly polls it at its own
// safe points (between queue pops, between minibatches).
//
// InstallShutdownHandlers registers SIGTERM + SIGINT handlers that set the
// flag. The handlers are installed without SA_RESTART so a thread blocked in
// a slow syscall (the daemon's stdin read) wakes with EINTR and observes the
// flag. A second signal after the flag is already set restores the default
// disposition and re-raises, so a wedged drain can still be killed.
void InstallShutdownHandlers();

// True once a shutdown signal arrived or RequestShutdown ran.
bool ShutdownRequested();

// Which signal tripped the flag (SIGTERM/SIGINT), or 0 for none /
// programmatic requests. For log lines only.
int ShutdownSignal();

// Programmatic trigger with the same observable effect as a signal (tests,
// in-process drain). Safe from any thread.
void RequestShutdown();

// Clears the flag so one test process can exercise several shutdown cycles.
// Not for production code paths.
void ResetShutdownForTest();

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_SHUTDOWN_H_
