#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace deepst {
namespace util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  DEEPST_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Uniform() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Gumbel() {
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(-std::log(u));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  DEEPST_CHECK_MSG(total > 0, "Categorical: all weights non-positive");
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0.0;
    if (u < w) return static_cast<int>(i);
    u -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) return static_cast<int>(i - 1);
  }
  return 0;
}

Rng::State Rng::GetState() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
  st.has_cached_gaussian = has_cached_gaussian_ ? 1 : 0;
  st.cached_gaussian = cached_gaussian_;
  return st;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian != 0;
  cached_gaussian_ = state.cached_gaussian;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the child id with fresh output so forks are independent streams.
  return Rng(NextUint64() ^ (0xd1342543de82ef95ULL * (stream_id + 1)));
}

double HashToUnit(uint64_t x) {
  uint64_t s = x;
  uint64_t z = SplitMix64(&s);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace util
}  // namespace deepst
