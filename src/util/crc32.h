#ifndef DEEPST_UTIL_CRC32_H_
#define DEEPST_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace deepst {
namespace util {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) -- the integrity footer of the
// training-checkpoint format (see docs/checkpointing.md). Small, table-driven
// and dependency-free; the same checksum zlib/gzip/PNG use, so values can be
// cross-checked with standard tools.

// One-shot checksum of `n` bytes. `seed` chains calls: passing the result of
// a previous Crc32 continues the same stream.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// Incremental accumulator for streamed writes.
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t n) { crc_ = Crc32(data, n, crc_); }
  uint32_t value() const { return crc_; }
  void Reset() { crc_ = 0; }

 private:
  uint32_t crc_ = 0;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_CRC32_H_
