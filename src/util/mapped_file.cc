#include "util/mapped_file.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DEEPST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/fault_injector.h"

namespace deepst {
namespace util {
namespace {

bool MmapDisabledByEnv() {
  const char* v = std::getenv("DEEPST_NO_MMAP");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  *out = std::move(raw).str();
  return Status::Ok();
}

}  // namespace

MappedFile::~MappedFile() {
#ifdef DEEPST_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept {
  *this = std::move(other);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#ifdef DEEPST_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  buffer_ = std::move(other.buffer_);
  mapped_ = other.mapped_;
  size_ = other.size_;
  // The fallback buffer's data pointer moves with the string.
  data_ = mapped_ ? other.data_ : buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  DEEPST_RETURN_IF_ERROR(CheckFaultPoint("mmap.open"));
  MappedFile file;
#ifdef DEEPST_HAVE_MMAP
  const bool try_map =
      !MmapDisabledByEnv() && CheckFaultPoint("mmap.map").ok();
  if (try_map) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("cannot stat " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      file.data_ = file.buffer_.data();
      return file;
    }
    // MAP_POPULATE (Linux) prefaults the whole file in one syscall: loaders
    // immediately CRC-sweep the full image, so paying thousands of soft
    // faults lazily would only add latency and jitter to cold loads.
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    flags |= MAP_POPULATE;
#endif
    void* addr = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
#ifdef MAP_POPULATE
    if (addr == MAP_FAILED) {
      // Some filesystems reject MAP_POPULATE; retry with the plain mapping.
      addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    }
#endif
    ::close(fd);  // the mapping keeps its own reference
    if (addr != MAP_FAILED) {
      file.data_ = static_cast<const char*>(addr);
      file.size_ = size;
      file.mapped_ = true;
      return file;
    }
    // mmap itself failed (e.g. a filesystem without mapping support); fall
    // through to the buffered path below.
  }
#endif
  DEEPST_RETURN_IF_ERROR(ReadWholeFile(path, &file.buffer_));
  file.data_ = file.buffer_.data();
  file.size_ = file.buffer_.size();
  file.mapped_ = false;
  return file;
}

}  // namespace util
}  // namespace deepst
