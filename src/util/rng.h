#ifndef DEEPST_UTIL_RNG_H_
#define DEEPST_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace deepst {
namespace util {

// Deterministic, fast PRNG (xoshiro256++) seeded through splitmix64.
// Every stochastic component of the library takes one of these explicitly,
// so datasets, training runs and benches are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform real in [0, 1).
  double Uniform();

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Standard Gumbel(0,1): -log(-log(U)).
  double Gumbel();

  // Bernoulli draw.
  bool Bernoulli(double p);

  // Index sampled proportionally to `weights` (need not be normalized;
  // non-positive entries are treated as 0). Aborts if all weights are <= 0.
  int Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle of indices or any vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Derives an independent child stream (useful for per-day / per-trip
  // deterministic substreams).
  Rng Fork(uint64_t stream_id);

  // Complete generator state, exposed so training checkpoints can freeze and
  // resume a stream mid-run with bitwise-identical continuation. The cached
  // Box-Muller half is part of the state: dropping it would desynchronize
  // every Gaussian draw after resume.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    uint64_t has_cached_gaussian = 0;  // 0 or 1
    double cached_gaussian = 0.0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Stateless hash of 64-bit input to a uniform double in [0,1) -- handy for
// deterministic per-(edge, slot) noise without storing streams.
double HashToUnit(uint64_t x);

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_RNG_H_
