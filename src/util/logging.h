#ifndef DEEPST_UTIL_LOGGING_H_
#define DEEPST_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace deepst {
namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr: "[I 12.345s] message".
void LogLine(LogLevel level, const std::string& message);

// Stream-style logger used via the DEEPST_LOG macro. Flushes on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace deepst

#define DEEPST_LOG(level) \
  ::deepst::util::LogMessage(::deepst::util::LogLevel::k##level)

#endif  // DEEPST_UTIL_LOGGING_H_
