#ifndef DEEPST_UTIL_STRING_UTIL_H_
#define DEEPST_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace deepst {
namespace util {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char delim);

// Joins the elements with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Fixed-precision float rendering (e.g. 0.6372 -> "0.637").
std::string FormatDouble(double v, int precision);

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_STRING_UTIL_H_
