#ifndef DEEPST_UTIL_MAPPED_FILE_H_
#define DEEPST_UTIL_MAPPED_FILE_H_

#include <memory>
#include <string>

#include "util/status.h"

namespace deepst {
namespace util {

// Read-only view of a whole file, preferably via mmap so N processes share
// one page-cache copy (the format-v3 zero-copy load path, docs/formats.md).
// Falls back to a buffered heap read when mmap is unavailable -- the mapping
// syscall failed, the platform has no mmap, or DEEPST_NO_MMAP is set -- so
// callers always get the same bytes, just without page sharing.
//
// Fault points (docs/robustness.md): "mmap.open" fails the whole open (as if
// the file were unreadable); "mmap.map" fails only the mapping attempt,
// forcing the buffered fallback.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static StatusOr<MappedFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  // True when the contents are an actual mmap'ed region (shared page cache),
  // false when the buffered fallback was taken.
  bool is_mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string buffer_;  // backing storage in fallback mode
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_MAPPED_FILE_H_
