#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace deepst {
namespace util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  DEEPST_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::printf("%s", ToString().c_str());
  std::fflush(stdout);
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      // Quote fields containing commas/quotes.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << "\"\"";
          else out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace util
}  // namespace deepst
