#ifndef DEEPST_UTIL_CHECK_H_
#define DEEPST_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal-invariant checking macros. These abort the process on failure and
// are intended for programmer errors (index out of range, shape mismatch,
// broken preconditions), not for recoverable runtime errors -- use
// util::Status for the latter.
//
// DEEPST_CHECK is always on (including release builds); DEEPST_DCHECK
// compiles away in NDEBUG builds and may guard more expensive assertions.

#define DEEPST_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DEEPST_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DEEPST_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DEEPST_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DEEPST_CHECK_EQ(a, b) DEEPST_CHECK((a) == (b))
#define DEEPST_CHECK_NE(a, b) DEEPST_CHECK((a) != (b))
#define DEEPST_CHECK_LT(a, b) DEEPST_CHECK((a) < (b))
#define DEEPST_CHECK_LE(a, b) DEEPST_CHECK((a) <= (b))
#define DEEPST_CHECK_GT(a, b) DEEPST_CHECK((a) > (b))
#define DEEPST_CHECK_GE(a, b) DEEPST_CHECK((a) >= (b))

#ifdef NDEBUG
#define DEEPST_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define DEEPST_DCHECK(cond) DEEPST_CHECK(cond)
#endif

#endif  // DEEPST_UTIL_CHECK_H_
