#ifndef DEEPST_UTIL_STATUS_H_
#define DEEPST_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace deepst {
namespace util {

// Lightweight RocksDB/Abseil-style status object for recoverable errors at
// API boundaries (file I/O, malformed inputs, infeasible queries). Internal
// invariant violations use DEEPST_CHECK instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kIoError,
    kInternal,
    kResourceExhausted,
    kDeadlineExceeded,
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable one-line rendering, e.g. "InvalidArgument: bad K".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Value-or-error wrapper. Accessing value() on an error status aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DEEPST_CHECK_MSG(!status_.ok(), "StatusOr(Status) requires an error");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DEEPST_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    DEEPST_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    DEEPST_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace util
}  // namespace deepst

#define DEEPST_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::deepst::util::Status _status = (expr);         \
    if (!_status.ok()) return _status;               \
  } while (0)

#endif  // DEEPST_UTIL_STATUS_H_
