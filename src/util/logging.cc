#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace deepst {
namespace util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%c %8.3fs] %s\n", LevelChar(level),
               SecondsSinceStart(), message.c_str());
}

}  // namespace util
}  // namespace deepst
