#include "util/fixed_format.h"

#include <cstring>

#include "util/crc32.h"
#include "util/string_util.h"

namespace deepst {
namespace util {

void AppendZeros(std::string* out, size_t bytes) {
  out->append(bytes, '\0');
}

SectionWriter::SectionWriter(uint64_t header_bytes, size_t num_sections)
    : payload_base_(AlignUp8(header_bytes + num_sections * sizeof(SectionEntry))) {
  entries_.reserve(num_sections);
}

void SectionWriter::AddRaw(uint32_t id, const char* data, uint64_t bytes) {
  AppendZeros(&payload_, AlignUp8(payload_.size()) - payload_.size());
  SectionEntry entry;
  entry.id = id;
  entry.offset = payload_base_ + payload_.size();
  entry.bytes = bytes;
  entries_.push_back(entry);
  payload_.append(data, bytes);
}

void SectionWriter::AppendTo(std::string* out) const {
  const size_t table_bytes = entries_.size() * sizeof(SectionEntry);
  AppendPod(out, entries_.data(), entries_.size());
  // Pad from the table end to the 8-aligned payload base.
  const uint64_t written = out->size();
  (void)written;
  AppendZeros(out, AlignUp8(table_bytes) - table_bytes);
  out->append(payload_);
}

void AppendCrcFooter(std::string* bytes) {
  AppendZeros(bytes, AlignUp8(bytes->size()) - bytes->size());
  const uint32_t crc = Crc32(bytes->data(), bytes->size());
  AppendPod(bytes, &crc, 1);
  AppendPod(bytes, &kFooterMagic, 1);
}

Status CheckCrcFooter(const char* data, size_t size, const std::string& what) {
  if (size < kFooterBytes || size % 8 != 0) {
    return Status::IoError("file too short or misaligned: " + what);
  }
  uint32_t stored_crc = 0;
  uint32_t footer_magic = 0;
  std::memcpy(&stored_crc, data + size - 8, sizeof(stored_crc));
  std::memcpy(&footer_magic, data + size - 4, sizeof(footer_magic));
  if (footer_magic != kFooterMagic) {
    return Status::IoError("missing v3 footer in " + what +
                           " (corrupt or truncated)");
  }
  if (Crc32(data, size - kFooterBytes) != stored_crc) {
    return Status::DataLoss("CRC mismatch in " + what +
                            " (corrupt or truncated)");
  }
  return Status::Ok();
}

StatusOr<SectionMap> SectionMap::Parse(const char* data, size_t size,
                                       uint64_t table_offset,
                                       uint32_t num_sections,
                                       const std::string& what) {
  if (num_sections > 64) {
    return Status::InvalidArgument("implausible section count in " + what);
  }
  if (size < kFooterBytes ||
      table_offset + uint64_t{num_sections} * sizeof(SectionEntry) >
          size - kFooterBytes) {
    return Status::IoError("section table exceeds file size in " + what);
  }
  SectionMap map;
  map.data_ = data;
  map.what_ = what;
  map.entries_.resize(num_sections);
  std::memcpy(map.entries_.data(), data + table_offset,
              num_sections * sizeof(SectionEntry));
  const uint64_t payload_end = size - kFooterBytes;
  for (const SectionEntry& e : map.entries_) {
    if (e.offset % 8 != 0) {
      return Status::InvalidArgument(
          StrFormat("misaligned section %u offset in %s", e.id,
                    what.c_str()));
    }
    if (e.offset > payload_end || e.bytes > payload_end - e.offset) {
      return Status::IoError(
          StrFormat("section %u exceeds file size in %s", e.id,
                    what.c_str()));
    }
  }
  return map;
}

bool SectionMap::Has(uint32_t id) const {
  for (const SectionEntry& e : entries_) {
    if (e.id == id) return true;
  }
  return false;
}

Status SectionMap::RawView(uint32_t id, uint64_t bytes,
                           const char** out) const {
  for (const SectionEntry& e : entries_) {
    if (e.id != id) continue;
    if (e.bytes != bytes) {
      return Status::InvalidArgument(
          StrFormat("section %u size mismatch in %s (%llu != %llu)", id,
                    what_.c_str(), static_cast<unsigned long long>(e.bytes),
                    static_cast<unsigned long long>(bytes)));
    }
    *out = data_ + e.offset;
    return Status::Ok();
  }
  return Status::InvalidArgument(
      StrFormat("missing section %u in %s", id, what_.c_str()));
}

}  // namespace util
}  // namespace deepst
