#ifndef DEEPST_UTIL_FIXED_FORMAT_H_
#define DEEPST_UTIL_FIXED_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/span.h"
#include "util/status.h"

namespace deepst {
namespace util {

// Shared plumbing for the fixed-layout, mmap-able "format v3" family
// (docs/formats.md). A v3 file is:
//
//   [format-specific header, 8-byte aligned fields only]
//   [section table: num_sections x SectionEntry]
//   [zero padding to 8]
//   [section payloads, each starting at an 8-byte-aligned offset,
//    zero-padded to 8 between sections]
//   [footer: u32 CRC32 over bytes [0, size-8), u32 0x33C0DA7A]
//
// Everything is little-endian; struct views are taken directly over the
// mapped region, so the payload records are PODs with explicit padding.

// One row of the section table.
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  // absolute byte offset, 8-aligned
  uint64_t bytes = 0;   // payload size (not padded)
};
static_assert(sizeof(SectionEntry) == 24);

constexpr uint32_t kFooterMagic = 0x33C0DA7Au;
constexpr size_t kFooterBytes = 8;

constexpr uint64_t AlignUp8(uint64_t n) { return (n + 7u) & ~uint64_t{7}; }

// Appends `bytes` zeros to `out`.
void AppendZeros(std::string* out, size_t bytes);

// Appends a POD array as raw bytes.
template <typename T>
void AppendPod(std::string* out, const T* data, size_t count) {
  out->append(reinterpret_cast<const char*>(data), count * sizeof(T));
}

// Builds the section payload block + table for a writer: call Add for every
// section (in file order), then Finish with everything already written
// before the table (the header) to get table offsets right.
class SectionWriter {
 public:
  // `header_bytes` = bytes preceding the section table in the file.
  explicit SectionWriter(uint64_t header_bytes, size_t num_sections);

  // Appends one section; pads the previous payload to 8 bytes.
  template <typename T>
  void Add(uint32_t id, const T* data, size_t count) {
    AddRaw(id, reinterpret_cast<const char*>(data), count * sizeof(T));
  }
  void AddRaw(uint32_t id, const char* data, uint64_t bytes);

  // Table bytes (fixed once constructed) followed by payload bytes. Appends
  // both to `out` and returns the total appended size.
  void AppendTo(std::string* out) const;

  size_t num_sections() const { return entries_.size(); }

 private:
  uint64_t payload_base_;  // file offset where payloads start
  std::vector<SectionEntry> entries_;
  std::string payload_;
};

// Seals a v3 image: appends the CRC footer over everything written so far.
void AppendCrcFooter(std::string* bytes);

// Validates the footer of a complete v3 image: size, trailing magic and
// CRC. `what` names the file in error messages.
Status CheckCrcFooter(const char* data, size_t size, const std::string& what);

// Read-only section directory over a mapped v3 image. Validates alignment
// and bounds up front; typed accessors then hand out struct views with no
// copying.
class SectionMap {
 public:
  // Parses `num_sections` entries at `table_offset`. All offsets must be
  // 8-aligned and every payload must land inside [payload_start, size -
  // footer). Returns InvalidArgument on any violation.
  static StatusOr<SectionMap> Parse(const char* data, size_t size,
                                    uint64_t table_offset,
                                    uint32_t num_sections,
                                    const std::string& what);

  bool Has(uint32_t id) const;

  // View of section `id` as `count` records of T. Fails when the section is
  // missing or its byte size != count * sizeof(T).
  template <typename T>
  Status View(uint32_t id, uint64_t count, const T** out) const {
    const char* raw = nullptr;
    DEEPST_RETURN_IF_ERROR(RawView(id, count * sizeof(T), &raw));
    *out = reinterpret_cast<const T*>(raw);
    return Status::Ok();
  }

 private:
  Status RawView(uint32_t id, uint64_t bytes, const char** out) const;

  const char* data_ = nullptr;
  std::vector<SectionEntry> entries_;
  std::string what_;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_FIXED_FORMAT_H_
