#ifndef DEEPST_UTIL_FAULT_INJECTOR_H_
#define DEEPST_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepst {
namespace util {

// What an armed fault point does when it fires.
enum class FaultKind : uint8_t {
  kIoError = 0,      // Status::IoError, as if the underlying device failed
  kPartialRead,      // Status::IoError, as if the stream ended mid-record
  kLatencySpike,     // sleep latency_ms, then succeed (exercises deadlines)
  kAllocFailure,     // Status::ResourceExhausted, as if an allocation failed
};

// Deterministic fault injection for robustness testing. Code under test
// declares named fault points (CheckFaultPoint below); tests and tools arm
// them with a hit-count trigger, so the n-th traversal of a point fails the
// same way on every run -- no wall clock, no randomness. Compiled in always:
// the disabled fast path is a single relaxed atomic load, so production
// builds pay nothing measurable and the exact binary under test is the one
// that ships.
//
// The registry is process-global (faults cross library layers the same way
// real faults do) and thread-safe; hit counting is serialized per point.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms `point`: the first `after` traversals pass, the next `count`
  // traversals fire, later ones pass again. count < 0 means fire forever.
  // Re-arming a point replaces its previous arming.
  void Arm(const std::string& point, FaultKind kind, int64_t after = 0,
           int64_t count = 1, int latency_ms = 10);

  // Arms from a comma-separated spec (CLI / DEEPST_FAULTS env syntax):
  //   point:kind[@after][xcount]
  // e.g. "roadnet.load:io_error, infer.query:alloc@2x3". Kinds: io_error,
  // partial_read, latency, alloc. A malformed spec returns InvalidArgument
  // naming the bad token and arms nothing: parsing is all-or-nothing, so a
  // typo never leaves the process half-armed.
  Status ArmFromSpec(const std::string& spec);

  // Disarms everything and zeroes all counters.
  void Reset();

  // True when at least one point is armed (the hot-path gate).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Slow path of CheckFaultPoint; call only when enabled().
  Status Check(const char* point);

  // Total fires across all points / traversals of one point since the last
  // Reset (test observability).
  int64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  int64_t hits(const std::string& point);

  // Every point name traversed since the last Reset, armed or not (lets
  // tests assert a fault point actually sits on the path they exercise).
  std::vector<std::string> SeenPoints();

 private:
  struct Arming {
    FaultKind kind = FaultKind::kIoError;
    int64_t after = 0;
    int64_t remaining = 0;  // fires left; < 0 = unbounded
    int latency_ms = 0;
    int64_t hits = 0;
  };

  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> fires_{0};
  std::mutex mu_;
  std::map<std::string, Arming> armed_;
  std::map<std::string, int64_t> seen_;
};

// Declares a fault point. Returns Ok when the injector is disabled or the
// point is not armed / not yet triggered; otherwise returns the armed
// fault's Status (latency spikes sleep and return Ok). Intended use:
//   DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("roadnet.load"));
inline Status CheckFaultPoint(const char* point) {
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.enabled()) return Status::Ok();
  return injector.Check(point);
}

// Fault point for code that reports failure by exception rather than Status
// (deep inside call chains whose signatures return values). Throws
// std::runtime_error carrying the Status text when the point fires.
void ThrowIfFaultPoint(const char* point);

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_FAULT_INJECTOR_H_
