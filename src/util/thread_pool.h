#ifndef DEEPST_UTIL_THREAD_POOL_H_
#define DEEPST_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace deepst {
namespace util {

// Fixed-size worker pool. This is the only place in the codebase that is
// allowed to spawn std::thread; everything above it (nn kernels, trainer,
// eval fan-out) parallelizes through nn::Backend, which owns one of these.
//
// The pool runs one job at a time. ParallelFor publishes the job, the
// calling thread participates in draining it, and workers go back to sleep
// when the index space is exhausted. Nested ParallelFor calls (issued from
// inside a task) run inline on the calling thread, so kernels may use the
// pool unconditionally without deadlocking or oversubscribing.
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the thread calling ParallelFor is the
  // remaining participant. num_threads <= 1 spawns nothing and ParallelFor
  // degenerates to a sequential loop.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes fn(i) exactly once for every i in [0, n), possibly concurrently
  // and in no particular order, and blocks until all invocations returned.
  // fn must not throw.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  // True when the current thread is a worker of any ThreadPool. Used to
  // detect (and inline) nested parallelism.
  static bool OnWorkerThread();

 private:
  // One published job. Heap-held via shared_ptr so that a straggler worker
  // whose final index claim lost the race can still touch the counters
  // after ParallelFor returned.
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t n = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
  };

  void WorkerLoop();
  void Drain(Job* job);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;    // Guarded by mu_.
  uint64_t generation_ = 0;     // Guarded by mu_; bumped per published job.
  bool shutdown_ = false;       // Guarded by mu_.

  std::mutex submit_mu_;  // Serializes top-level ParallelFor calls.
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_THREAD_POOL_H_
