#ifndef DEEPST_UTIL_BYTE_READER_H_
#define DEEPST_UTIL_BYTE_READER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace deepst {
namespace util {

// Bounds-checked POD cursor over an in-memory file image. Loaders that parse
// untrusted bytes read through this instead of raw ifstream reads: every
// read either fits in the remaining buffer or fails without touching the
// output, and `remaining()` lets callers reject element counts that could
// not possibly fit in the file (the defense against bit-flipped counts
// driving multi-gigabyte allocations before the truncation is noticed).
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  // Advances past `bytes` bytes; false (cursor untouched) when fewer remain.
  bool Skip(uint64_t bytes) {
    if (bytes > remaining()) return false;
    pos_ += static_cast<size_t>(bytes);
    return true;
  }

  // True when `count` records of `record_bytes` each could still fit.
  bool CanHold(uint64_t count, uint64_t record_bytes) const {
    return record_bytes == 0 || count <= remaining() / record_bytes;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_BYTE_READER_H_
