#ifndef DEEPST_UTIL_FLAGS_H_
#define DEEPST_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepst {
namespace util {

// Minimal command-line parser for the CLI tools: positional arguments plus
// --key=value / --key value / --bool-flag options. No registration step --
// callers query by name with typed getters and defaults.
class Flags {
 public:
  // Parses argv[1..); returns an error for malformed options (an option
  // without a leading "--" is treated as a positional argument).
  static StatusOr<Flags> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  // Typed getters with defaults. GetInt/GetDouble return an error Status
  // via StatusOr when the value does not parse.
  std::string GetString(const std::string& name,
                        const std::string& default_value = "") const;
  StatusOr<int64_t> GetInt(const std::string& name,
                           int64_t default_value) const;
  StatusOr<double> GetDouble(const std::string& name,
                             double default_value) const;
  bool GetBool(const std::string& name, bool default_value = false) const;

  // Names seen on the command line (for unknown-flag diagnostics).
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_FLAGS_H_
