#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DEEPST_CRC32_PCLMUL 1
#include <immintrin.h>
#endif

namespace deepst {
namespace util {
namespace {

constexpr uint32_t kPoly = 0xEDB88320u;

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table, and
// table[k][b] = table[0]-step applied k extra times. Produces bit-identical
// results to the bytewise loop while processing 8 bytes per iteration.
// Format-v3 loads checksum the whole mapped file, so CRC throughput is the
// dominant cost of a zero-copy cold load (docs/formats.md); on x86-64 with
// carry-less multiply the PCLMUL kernel below takes over for long buffers
// and these tables only handle short inputs and tails.
struct Tables {
  uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables.t[0][c & 0xFFu] ^ (c >> 8);
      tables.t[k][i] = c;
    }
  }
  return tables;
}

constexpr Tables kTables = MakeTables();

#if defined(DEEPST_CRC32_PCLMUL)

// Carry-less-multiply folding (Gopal et al., "Fast CRC Computation for
// Generic Polynomials Using PCLMULQDQ"): four 128-bit lanes fold 64 bytes
// per iteration, then reduce to the same 32-bit state the tables produce.
// Identical polynomial, bit order and result as the loops below -- this is
// purely a throughput path, dispatched at runtime.
//
// Fold/reduction constants are the usual x^k mod P values for the
// reflected polynomial (P' = 0x1DB710641):
//   k1 = x^(4*128+32) mod P = 0x154442bd4   k2 = x^(4*128-32) = 0x1c6e41596
//   k3 = x^(128+32)   mod P = 0x1751997d0   k4 = x^(128-32)   = 0x0ccaa009e
//   k5 = x^64         mod P = 0x163cd6124   mu (Barrett)      = 0x1f7011641
//
// `crc` is the in-flight (pre-final-xor) state; `len` must be a multiple of
// 16 and at least 64. Returns the new in-flight state.
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32Pclmul(
    const unsigned char* buf, size_t len, uint32_t crc) {
  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);
  const __m128i poly_mu = _mm_set_epi64x(0x01f7011641, 0x01db710641);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  buf += 64;
  len -= 64;

  // Fold 64 bytes at a time across the four lanes.
  while (len >= 64) {
    const __m128i f1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    const __m128i f2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    const __m128i f3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    const __m128i f4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, f1),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, f2),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, f3),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, f4),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30)));
    buf += 64;
    len -= 64;
  }

  // Fold the four lanes into one.
  __m128i f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x2);
  f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x3);
  f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x4);

  // Fold any remaining 16-byte blocks into the single lane.
  while (len >= 16) {
    f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, f),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    buf += 16;
    len -= 16;
  }

  // Reduce 128 -> 64 bits, then Barrett-reduce 64 -> 32 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i t = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), t);
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, t);
  t = _mm_and_si128(x1, mask32);
  t = _mm_clmulepi64_si128(t, poly_mu, 0x10);
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, poly_mu, 0x00);
  x1 = _mm_xor_si128(x1, t);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

bool HasPclmul() {
  static const bool ok =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return ok;
}

#endif  // DEEPST_CRC32_PCLMUL

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(DEEPST_CRC32_PCLMUL)
  if (n >= 64 && HasPclmul()) {
    const size_t chunk = n & ~static_cast<size_t>(15);
    c = Crc32Pclmul(p, chunk, c);
    p += chunk;
    n -= chunk;
  }
#endif
  const auto& t = kTables.t;
  // The 8-byte inner loop folds words in little-endian order; on a
  // big-endian host fall through to the (identical-result) bytewise tail.
  while (std::endian::native == std::endian::little && n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace util
}  // namespace deepst
