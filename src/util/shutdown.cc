#include "util/shutdown.h"

#include <csignal>

namespace deepst {
namespace util {
namespace {

// sig_atomic_t is the only integer type the C standard guarantees a handler
// may write; both fields are monotonic (0 -> set) so torn reads from other
// threads can only lag, never invent a shutdown.
volatile std::sig_atomic_t g_shutdown_requested = 0;
volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void HandleShutdownSignal(int signum) {
  if (g_shutdown_requested) {
    // Second signal while already draining: give up on graceful and die the
    // default way (a stuck drain must stay killable with plain ctrl-C).
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  g_shutdown_requested = 1;
  g_shutdown_signal = signum;
}

}  // namespace

void InstallShutdownHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked reads wake with EINTR
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
#else
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
#endif
}

bool ShutdownRequested() { return g_shutdown_requested != 0; }

int ShutdownSignal() { return static_cast<int>(g_shutdown_signal); }

void RequestShutdown() { g_shutdown_requested = 1; }

void ResetShutdownForTest() {
  g_shutdown_requested = 0;
  g_shutdown_signal = 0;
}

}  // namespace util
}  // namespace deepst
