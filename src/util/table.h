#ifndef DEEPST_UTIL_TABLE_H_
#define DEEPST_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace deepst {
namespace util {

// Aligned ASCII table printer used by the benchmark harnesses to render
// paper-style tables (Table III-VI) and figure series (Fig. 5-8) to stdout,
// plus optional CSV export for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: renders doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  // Returns the aligned ASCII rendering (with a separator under the header).
  std::string ToString() const;

  // Prints ToString() to stdout with an optional title line.
  void Print(const std::string& title = "") const;

  // Writes the table as CSV.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_TABLE_H_
