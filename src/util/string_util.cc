#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace deepst {
namespace util {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace util
}  // namespace deepst
