#include "util/fault_injector.h"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "util/string_util.h"

namespace deepst {
namespace util {
namespace {

// Parses one kind token of the spec grammar.
bool ParseKind(const std::string& token, FaultKind* kind) {
  if (token == "io_error") {
    *kind = FaultKind::kIoError;
  } else if (token == "partial_read") {
    *kind = FaultKind::kPartialRead;
  } else if (token == "latency") {
    *kind = FaultKind::kLatencySpike;
  } else if (token == "alloc") {
    *kind = FaultKind::kAllocFailure;
  } else {
    return false;
  }
  return true;
}

bool ParseCount(const std::string& digits, int64_t* out) {
  if (digits.empty()) return false;
  int64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    const int64_t d = c - '0';
    if (v > (std::numeric_limits<int64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

std::string Trimmed(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultKind kind,
                        int64_t after, int64_t count, int latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Arming arming;
  arming.kind = kind;
  arming.after = after;
  arming.remaining = count;
  arming.latency_ms = latency_ms;
  armed_[point] = arming;
  enabled_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  // Two phases on purpose: every entry parses before anything arms, so a
  // malformed spec can never leave the injector half-armed (a chaos harness
  // that typos one entry gets a clean error, not a partially faulted run).
  struct ParsedEntry {
    std::string point;
    FaultKind kind = FaultKind::kIoError;
    int64_t after = 0;
    int64_t count = 1;
  };
  std::vector<ParsedEntry> entries;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = Trimmed(spec.substr(start, end - start));
    start = end + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "fault spec entry '" + entry +
          "' has no ':' (want point:kind[@after][xcount])");
    }
    ParsedEntry parsed;
    parsed.point = Trimmed(entry.substr(0, colon));
    if (parsed.point.empty()) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' names no fault point before ':'");
    }
    std::string rest = Trimmed(entry.substr(colon + 1));
    const size_t x = rest.find('x');
    if (x != std::string::npos) {
      const std::string token = Trimmed(rest.substr(x + 1));
      if (!ParseCount(token, &parsed.count)) {
        return Status::InvalidArgument(
            "bad count 'x" + token + "' in fault spec entry '" + entry +
            "' (want a decimal that fits int64, e.g. x3)");
      }
      if (parsed.count == 0) {
        return Status::InvalidArgument(
            "count 'x0' in fault spec entry '" + entry +
            "' would never fire (want x1 or more)");
      }
      rest = Trimmed(rest.substr(0, x));
    }
    const size_t at = rest.find('@');
    if (at != std::string::npos) {
      const std::string token = Trimmed(rest.substr(at + 1));
      if (!ParseCount(token, &parsed.after)) {
        return Status::InvalidArgument(
            "bad after '@" + token + "' in fault spec entry '" + entry +
            "' (want a decimal that fits int64, e.g. @2)");
      }
      rest = Trimmed(rest.substr(0, at));
    }
    if (rest.empty()) {
      return Status::InvalidArgument(
          "fault spec entry '" + entry +
          "' names no kind after ':' (want io_error|partial_read|latency|"
          "alloc)");
    }
    if (!ParseKind(rest, &parsed.kind)) {
      return Status::InvalidArgument(
          "unknown fault kind '" + rest + "' in fault spec entry '" + entry +
          "' (want io_error|partial_read|latency|alloc)");
    }
    entries.push_back(std::move(parsed));
  }
  for (const ParsedEntry& e : entries) Arm(e.point, e.kind, e.after, e.count);
  return Status::Ok();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  seen_.clear();
  fires_.store(0, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::Check(const char* point) {
  FaultKind kind;
  int latency_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++seen_[point];
    auto it = armed_.find(point);
    if (it == armed_.end()) return Status::Ok();
    Arming& arming = it->second;
    ++arming.hits;
    if (arming.hits <= arming.after) return Status::Ok();
    if (arming.remaining == 0) return Status::Ok();
    if (arming.remaining > 0) --arming.remaining;
    kind = arming.kind;
    latency_ms = arming.latency_ms;
  }
  fires_.fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case FaultKind::kIoError:
      return Status::IoError(StrFormat("injected I/O error at %s", point));
    case FaultKind::kPartialRead:
      return Status::IoError(
          StrFormat("injected partial read at %s", point));
    case FaultKind::kLatencySpike:
      std::this_thread::sleep_for(std::chrono::milliseconds(latency_ms));
      return Status::Ok();
    case FaultKind::kAllocFailure:
      return Status::ResourceExhausted(
          StrFormat("injected allocation failure at %s", point));
  }
  return Status::Internal("unreachable fault kind");
}

int64_t FaultInjector::hits(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = seen_.find(point);
  return it == seen_.end() ? 0 : it->second;
}

std::vector<std::string> FaultInjector::SeenPoints() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> points;
  points.reserve(seen_.size());
  for (const auto& [name, count] : seen_) points.push_back(name);
  return points;
}

void ThrowIfFaultPoint(const char* point) {
  const Status status = CheckFaultPoint(point);
  if (!status.ok()) throw std::runtime_error(status.ToString());
}

}  // namespace util
}  // namespace deepst
