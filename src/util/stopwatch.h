#ifndef DEEPST_UTIL_STOPWATCH_H_
#define DEEPST_UTIL_STOPWATCH_H_

#include <chrono>

namespace deepst {
namespace util {

// Simple wall-clock stopwatch used by the training loop and the scalability
// bench (Fig. 8 reproduction).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace deepst

#endif  // DEEPST_UTIL_STOPWATCH_H_
