#include "util/thread_pool.h"

#include "util/check.h"

namespace deepst {
namespace util {
namespace {

thread_local bool t_on_pool_worker = false;
// Set on a thread while it is inside a top-level ParallelFor. Tasks run on
// the submitting thread as well as on workers, so a nested call must check
// this flag too, not just t_on_pool_worker -- otherwise it would try to
// re-lock submit_mu_ and deadlock.
thread_local bool t_in_parallel_for = false;

}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  DEEPST_CHECK_GE(num_threads, 1);
  num_threads_ = num_threads;
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Drain(Job* job) {
  for (;;) {
    const int64_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    (*job->fn)(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->n) {
      // Last task finished: wake the submitting thread. Taking the lock
      // orders the notify after the waiter's predicate check.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    Drain(job.get());
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1 || OnWorkerThread() || t_in_parallel_for) {
    // Sequential fallback; nested calls run inline here to avoid deadlock.
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  t_in_parallel_for = true;
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  Drain(job.get());

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job->done.load() == job->n; });
    job_.reset();
  }
  t_in_parallel_for = false;
}

}  // namespace util
}  // namespace deepst
