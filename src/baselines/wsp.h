#ifndef DEEPST_BASELINES_WSP_H_
#define DEEPST_BASELINES_WSP_H_

#include <memory>

#include "baselines/router.h"
#include "roadnet/spatial_index.h"
#include "traj/segment_stats.h"

namespace deepst {
namespace baselines {

// WSP: weighted shortest path (paper Section V-A). Edge weights are the mean
// historical travel times of the segments estimated from the entire training
// dataset; the route is the shortest path from the origin segment to the
// destination segment. When the exact destination segment is not provided in
// the query, the rough destination coordinate is snapped to the nearest
// segment.
class WspRouter : public Router {
 public:
  WspRouter(const roadnet::RoadNetwork& net,
            const roadnet::SpatialIndex& index,
            const traj::SegmentStatsTable& stats);

  std::string name() const override { return "WSP"; }
  traj::Route PredictRoute(const core::RouteQuery& query,
                           util::Rng* rng) override;
  // Score is the negated weighted route cost (not a probability; ordering
  // only).
  double ScoreRoute(const core::RouteQuery& query, const traj::Route& route,
                    util::Rng* rng) override;

 private:
  const roadnet::RoadNetwork& net_;
  const roadnet::SpatialIndex& index_;
  const traj::SegmentStatsTable& stats_;
};

}  // namespace baselines
}  // namespace deepst

#endif  // DEEPST_BASELINES_WSP_H_
