#include "baselines/markov2.h"

#include <cmath>
#include <limits>

#include "core/deepst_model.h"

namespace deepst {
namespace baselines {

using roadnet::SegmentId;

SecondOrderMarkovRouter::SecondOrderMarkovRouter(
    const roadnet::RoadNetwork& net, const core::DeepSTConfig& gen_config)
    : net_(net), gen_config_(gen_config) {
  counts1_.resize(static_cast<size_t>(net.num_segments()));
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    counts1_[static_cast<size_t>(s)].assign(
        static_cast<size_t>(net.OutDegree(s)), 0);
  }
}

void SecondOrderMarkovRouter::Train(
    const std::vector<const traj::TripRecord*>& records) {
  const int64_t n = net_.num_segments();
  for (const auto* rec : records) {
    const traj::Route& route = rec->trip.route;
    for (size_t i = 0; i + 1 < route.size(); ++i) {
      const int slot = net_.NeighborSlot(route[i], route[i + 1]);
      DEEPST_CHECK_GE(slot, 0);
      ++counts1_[static_cast<size_t>(route[i])][static_cast<size_t>(slot)];
      if (i >= 1) {
        const int64_t key = static_cast<int64_t>(route[i - 1]) * n + route[i];
        auto& row = counts2_[key];
        if (row.empty()) {
          row.assign(static_cast<size_t>(net_.OutDegree(route[i])), 0);
        }
        ++row[static_cast<size_t>(slot)];
      }
    }
  }
}

const std::vector<int>* SecondOrderMarkovRouter::ContextCounts(
    SegmentId prev, SegmentId cur) const {
  if (prev == roadnet::kInvalidSegment) return nullptr;
  const int64_t key =
      static_cast<int64_t>(prev) * net_.num_segments() + cur;
  auto it = counts2_.find(key);
  if (it == counts2_.end()) return nullptr;
  return &it->second;
}

double SecondOrderMarkovRouter::TransitionProb(SegmentId prev, SegmentId cur,
                                               SegmentId next) const {
  const int slot = net_.NeighborSlot(cur, next);
  if (slot < 0) return 0.0;
  const std::vector<int>* row = ContextCounts(prev, cur);
  if (row == nullptr) row = &counts1_[static_cast<size_t>(cur)];
  double total = 0.0;
  for (int c : *row) total += c + 1.0;
  return ((*row)[static_cast<size_t>(slot)] + 1.0) / total;
}

traj::Route SecondOrderMarkovRouter::PredictRoute(
    const core::RouteQuery& query, util::Rng* rng) {
  traj::Route route = {query.origin};
  std::vector<bool> visited(static_cast<size_t>(net_.num_segments()), false);
  visited[static_cast<size_t>(query.origin)] = true;
  SegmentId prev = roadnet::kInvalidSegment;
  SegmentId cur = query.origin;
  for (int step = 0; step < gen_config_.max_route_steps; ++step) {
    const auto& outs = net_.OutSegments(cur);
    if (outs.empty()) break;
    int best = -1;
    double best_p = -1.0;
    for (size_t s = 0; s < outs.size(); ++s) {
      if (visited[static_cast<size_t>(outs[s])]) continue;
      const double p = TransitionProb(prev, cur, outs[s]);
      if (p > best_p) {
        best_p = p;
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    const SegmentId next = outs[static_cast<size_t>(best)];
    route.push_back(next);
    visited[static_cast<size_t>(next)] = true;
    if (core::ShouldStop(net_, query.destination, next, gen_config_, rng)) {
      break;
    }
    prev = cur;
    cur = next;
  }
  return route;
}

double SecondOrderMarkovRouter::ScoreRoute(const core::RouteQuery& query,
                                           const traj::Route& route,
                                           util::Rng* rng) {
  (void)query;
  (void)rng;
  double log_lik = 0.0;
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    const SegmentId prev =
        i >= 1 ? route[i - 1] : roadnet::kInvalidSegment;
    const double p = TransitionProb(prev, route[i], route[i + 1]);
    if (p <= 0.0) return -std::numeric_limits<double>::infinity();
    log_lik += std::log(p);
  }
  return log_lik;
}

}  // namespace baselines
}  // namespace deepst
