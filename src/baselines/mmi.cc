#include "baselines/mmi.h"

#include <cmath>
#include <limits>

namespace deepst {
namespace baselines {

using roadnet::SegmentId;

MarkovRouter::MarkovRouter(const roadnet::RoadNetwork& net,
                           const core::DeepSTConfig& gen_config)
    : net_(net), gen_config_(gen_config) {
  counts_.resize(static_cast<size_t>(net.num_segments()));
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    counts_[static_cast<size_t>(s)].assign(
        static_cast<size_t>(net.OutDegree(s)), 0);
  }
}

void MarkovRouter::Train(const std::vector<const traj::TripRecord*>& records) {
  for (const auto* rec : records) {
    const traj::Route& route = rec->trip.route;
    for (size_t i = 0; i + 1 < route.size(); ++i) {
      const int slot = net_.NeighborSlot(route[i], route[i + 1]);
      DEEPST_CHECK_GE(slot, 0);
      ++counts_[static_cast<size_t>(route[i])][static_cast<size_t>(slot)];
    }
  }
}

double MarkovRouter::TransitionProb(SegmentId cur, SegmentId next) const {
  const int slot = net_.NeighborSlot(cur, next);
  if (slot < 0) return 0.0;
  const auto& row = counts_[static_cast<size_t>(cur)];
  double total = 0.0;
  for (int c : row) total += c + 1.0;  // add-one smoothing
  return (row[static_cast<size_t>(slot)] + 1.0) / total;
}

traj::Route MarkovRouter::PredictRoute(const core::RouteQuery& query,
                                       util::Rng* rng) {
  traj::Route route = {query.origin};
  std::vector<bool> visited(static_cast<size_t>(net_.num_segments()), false);
  visited[static_cast<size_t>(query.origin)] = true;
  SegmentId cur = query.origin;
  for (int step = 0; step < gen_config_.max_route_steps; ++step) {
    const auto& outs = net_.OutSegments(cur);
    if (outs.empty()) break;
    const auto& row = counts_[static_cast<size_t>(cur)];
    // Greedy most-probable unvisited successor (loop guard, matching the
    // decoding used by the neural methods).
    int best = -1;
    for (size_t s = 0; s < row.size(); ++s) {
      if (visited[static_cast<size_t>(outs[s])]) continue;
      if (best < 0 || row[s] > row[static_cast<size_t>(best)]) {
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    const SegmentId next = outs[static_cast<size_t>(best)];
    route.push_back(next);
    visited[static_cast<size_t>(next)] = true;
    if (core::ShouldStop(net_, query.destination, next, gen_config_, rng)) {
      break;
    }
    cur = next;
  }
  return route;
}

double MarkovRouter::ScoreRoute(const core::RouteQuery& query,
                                const traj::Route& route, util::Rng* rng) {
  (void)query;
  (void)rng;
  double log_lik = 0.0;
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    const double p = TransitionProb(route[i], route[i + 1]);
    if (p <= 0.0) return -std::numeric_limits<double>::infinity();
    log_lik += std::log(p);
  }
  return log_lik;
}

}  // namespace baselines
}  // namespace deepst
