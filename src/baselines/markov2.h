#ifndef DEEPST_BASELINES_MARKOV2_H_
#define DEEPST_BASELINES_MARKOV2_H_

#include <unordered_map>
#include <vector>

#include "baselines/router.h"
#include "core/config.h"
#include "roadnet/road_network.h"

namespace deepst {
namespace baselines {

// Second-order Markov baseline: P(next | prev, cur). The paper's related
// work (InferTra [1]) models spatial transitions with higher-order Markov
// chains; this router quantifies how much a one-step-longer memory buys over
// MMI, and how far both remain from the RNN's unbounded memory.
//
// Backoff: unseen (prev, cur) contexts fall back to the first-order counts,
// then to add-one smoothing.
class SecondOrderMarkovRouter : public Router {
 public:
  SecondOrderMarkovRouter(const roadnet::RoadNetwork& net,
                          const core::DeepSTConfig& gen_config);

  void Train(const std::vector<const traj::TripRecord*>& records);

  std::string name() const override { return "MM2"; }
  traj::Route PredictRoute(const core::RouteQuery& query,
                           util::Rng* rng) override;
  double ScoreRoute(const core::RouteQuery& query, const traj::Route& route,
                    util::Rng* rng) override;

  // P(next | prev, cur); prev may be kInvalidSegment for the first step.
  double TransitionProb(roadnet::SegmentId prev, roadnet::SegmentId cur,
                        roadnet::SegmentId next) const;

 private:
  // Slot counts for a (prev, cur) context; empty vector = unseen context.
  const std::vector<int>* ContextCounts(roadnet::SegmentId prev,
                                        roadnet::SegmentId cur) const;

  const roadnet::RoadNetwork& net_;
  core::DeepSTConfig gen_config_;
  // First-order fallback: counts1_[cur][slot].
  std::vector<std::vector<int>> counts1_;
  // Second-order: key = prev * num_segments + cur.
  std::unordered_map<int64_t, std::vector<int>> counts2_;
};

}  // namespace baselines
}  // namespace deepst

#endif  // DEEPST_BASELINES_MARKOV2_H_
