#ifndef DEEPST_BASELINES_MMI_H_
#define DEEPST_BASELINES_MMI_H_

#include <vector>

#include "baselines/router.h"
#include "core/config.h"
#include "roadnet/road_network.h"

namespace deepst {
namespace baselines {

// MMI: the first-order Markov model baseline (paper Section V-A). Transition
// probabilities P(next | cur) are the add-one-smoothed empirical frequencies
// of adjacent-segment transitions in the training routes. Prediction is a
// greedy most-probable walk; like the paper's MMI it ignores destination and
// traffic for *transition choice* -- the destination is only used by the
// shared external stop rule (the paper notes MMI/RNN make identical
// transition predictions for all trips from the same origin).
class MarkovRouter : public Router {
 public:
  MarkovRouter(const roadnet::RoadNetwork& net,
               const core::DeepSTConfig& gen_config);

  // Counts transitions of the training routes.
  void Train(const std::vector<const traj::TripRecord*>& records);

  std::string name() const override { return "MMI"; }
  traj::Route PredictRoute(const core::RouteQuery& query,
                           util::Rng* rng) override;
  double ScoreRoute(const core::RouteQuery& query, const traj::Route& route,
                    util::Rng* rng) override;

  // P(next | cur) with add-one smoothing over cur's true neighbors.
  double TransitionProb(roadnet::SegmentId cur, roadnet::SegmentId next) const;

 private:
  const roadnet::RoadNetwork& net_;
  core::DeepSTConfig gen_config_;  // stop rule parameters
  // counts_[s][slot] = #times transition (s -> slot) observed.
  std::vector<std::vector<int>> counts_;
};

}  // namespace baselines
}  // namespace deepst

#endif  // DEEPST_BASELINES_MMI_H_
