#include "baselines/wsp.h"

#include "roadnet/shortest_path.h"

namespace deepst {
namespace baselines {

WspRouter::WspRouter(const roadnet::RoadNetwork& net,
                     const roadnet::SpatialIndex& index,
                     const traj::SegmentStatsTable& stats)
    : net_(net), index_(index), stats_(stats) {}

traj::Route WspRouter::PredictRoute(const core::RouteQuery& query,
                                    util::Rng* rng) {
  (void)rng;
  // The problem statement only provides the rough destination coordinate, so
  // WSP snaps it to the nearest segment (unlike CSSRNN, which the paper
  // grants the exact final segment).
  roadnet::SegmentId target = index_.Nearest(query.destination).segment;
  if (target == roadnet::kInvalidSegment) target = query.final_segment;
  if (target == roadnet::kInvalidSegment) return {query.origin};
  auto cost = [this](roadnet::SegmentId s) {
    return std::max(stats_.MeanTime(s), 1e-3);
  };
  auto path = roadnet::ShortestPath(net_, query.origin, target, cost);
  if (!path.ok()) return {query.origin};
  return path.value().path;
}

double WspRouter::ScoreRoute(const core::RouteQuery& query,
                             const traj::Route& route, util::Rng* rng) {
  (void)query;
  (void)rng;
  double cost = 0.0;
  for (auto s : route) cost += stats_.MeanTime(s);
  return -cost;
}

}  // namespace baselines
}  // namespace deepst
