#include "baselines/neural_router.h"

namespace deepst {
namespace baselines {

core::DeepSTConfig DeepStConfigOf(const core::DeepSTConfig& base) {
  core::DeepSTConfig cfg = base;
  cfg.use_traffic = true;
  cfg.destination_mode = core::DestinationMode::kProxies;
  return cfg;
}

core::DeepSTConfig DeepStCConfigOf(const core::DeepSTConfig& base) {
  core::DeepSTConfig cfg = base;
  cfg.use_traffic = false;
  cfg.destination_mode = core::DestinationMode::kProxies;
  return cfg;
}

core::DeepSTConfig CssrnnConfigOf(const core::DeepSTConfig& base) {
  core::DeepSTConfig cfg = base;
  cfg.use_traffic = false;
  cfg.destination_mode = core::DestinationMode::kFinalSegment;
  return cfg;
}

core::DeepSTConfig RnnConfigOf(const core::DeepSTConfig& base) {
  core::DeepSTConfig cfg = base;
  cfg.use_traffic = false;
  cfg.destination_mode = core::DestinationMode::kNone;
  return cfg;
}

}  // namespace baselines
}  // namespace deepst
