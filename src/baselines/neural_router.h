#ifndef DEEPST_BASELINES_NEURAL_ROUTER_H_
#define DEEPST_BASELINES_NEURAL_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/router.h"
#include "core/trainer.h"

namespace deepst {
namespace baselines {

// Adapter exposing DeepSTModel and its ablations through the Router
// interface. The paper's neural methods map to configurations:
//   DeepST   : use_traffic=true,  destination_mode=kProxies
//   DeepST-C : use_traffic=false, destination_mode=kProxies
//   CSSRNN   : use_traffic=false, destination_mode=kFinalSegment [7]
//   RNN      : use_traffic=false, destination_mode=kNone
class NeuralRouter : public Router {
 public:
  // Takes ownership of nothing; `model` must outlive the router.
  NeuralRouter(std::string name, core::DeepSTModel* model)
      : name_(std::move(name)), model_(model) {}

  std::string name() const override { return name_; }

  traj::Route PredictRoute(const core::RouteQuery& query,
                           util::Rng* rng) override {
    return model_->PredictRoute(query, rng);
  }

  double ScoreRoute(const core::RouteQuery& query, const traj::Route& route,
                    util::Rng* rng) override {
    return model_->ScoreRoute(query, route, rng);
  }

  // Batched scoring: one MakeContext for the whole candidate set (one rng
  // draw sequence instead of one per route), then a single padded batch
  // through the graph-free engine.
  std::vector<double> ScoreRoutes(const core::RouteQuery& query,
                                  const std::vector<traj::Route>& routes,
                                  util::Rng* rng) override {
    core::PredictionContext ctx = model_->MakeContext(query, rng);
    return model_->ScoreRoutes(ctx, routes);
  }

  core::DeepSTModel* model() { return model_; }

 private:
  std::string name_;
  core::DeepSTModel* model_;
};

// Canonical configurations for the paper's methods, derived from a base
// config (which carries the shared sizes/seeds).
core::DeepSTConfig DeepStConfigOf(const core::DeepSTConfig& base);
core::DeepSTConfig DeepStCConfigOf(const core::DeepSTConfig& base);
core::DeepSTConfig CssrnnConfigOf(const core::DeepSTConfig& base);
core::DeepSTConfig RnnConfigOf(const core::DeepSTConfig& base);

}  // namespace baselines
}  // namespace deepst

#endif  // DEEPST_BASELINES_NEURAL_ROUTER_H_
