#ifndef DEEPST_BASELINES_ROUTER_H_
#define DEEPST_BASELINES_ROUTER_H_

#include <string>
#include <vector>

#include "core/deepst_model.h"
#include "traj/types.h"
#include "util/rng.h"

namespace deepst {
namespace baselines {

// Common interface of every route-prediction method evaluated in the paper's
// Section V-B (DeepST, DeepST-C, CSSRNN, RNN, MMI, WSP). A router predicts
// the most likely route for a query and scores the spatial-transition
// likelihood of a given route.
class Router {
 public:
  virtual ~Router() = default;

  virtual std::string name() const = 0;

  // Most-likely-route prediction.
  virtual traj::Route PredictRoute(const core::RouteQuery& query,
                                   util::Rng* rng) = 0;

  // Log-likelihood of `route` being traveled under the method's model
  // (methods without a probabilistic model return a score whose ordering is
  // meaningful, documented per subclass).
  virtual double ScoreRoute(const core::RouteQuery& query,
                            const traj::Route& route, util::Rng* rng) = 0;

  // Scores a whole candidate set under one query. The default loops
  // ScoreRoute (re-deriving the query context per route); routers with a
  // batched engine override it to build the context once and score all
  // candidates together.
  virtual std::vector<double> ScoreRoutes(
      const core::RouteQuery& query, const std::vector<traj::Route>& routes,
      util::Rng* rng) {
    std::vector<double> scores;
    scores.reserve(routes.size());
    for (const traj::Route& route : routes) {
      scores.push_back(ScoreRoute(query, route, rng));
    }
    return scores;
  }
};

}  // namespace baselines
}  // namespace deepst

#endif  // DEEPST_BASELINES_ROUTER_H_
