#ifndef DEEPST_ROADNET_SPATIAL_INDEX_H_
#define DEEPST_ROADNET_SPATIAL_INDEX_H_

#include <memory>
#include <vector>

#include "geo/grid.h"
#include "geo/tile_router.h"
#include "roadnet/road_network.h"
#include "util/span.h"

namespace deepst {
namespace roadnet {

// A segment candidate returned by a nearest-segment query.
struct SegmentCandidate {
  SegmentId segment = kInvalidSegment;
  geo::Projection projection;  // projection of the query point
};

// Query engine shared by every spatial-index storage layout. Subclasses only
// provide per-cell segment lists; because ring iteration and tie handling
// live here, two layouts that serve identical per-cell contents return
// bitwise-identical candidates.
//
// Used by map matching (candidate generation) and destination snapping (WSP
// baseline, stop model). Each segment is registered in every cell its
// polyline's bounding box overlaps.
class SpatialIndexBase {
 public:
  virtual ~SpatialIndexBase() = default;

  // Segments whose projection distance to `p` is <= radius_m, sorted by
  // ascending distance.
  std::vector<SegmentCandidate> SegmentsNear(const geo::Point& p,
                                             double radius_m) const;

  // Up to `k` nearest segments (expanding ring search), sorted ascending.
  std::vector<SegmentCandidate> NearestSegments(const geo::Point& p,
                                                int k) const;

  // Single nearest segment (kInvalidSegment only for an empty network).
  SegmentCandidate Nearest(const geo::Point& p) const;

  const geo::GridSpec& grid() const { return grid_; }

 protected:
  SpatialIndexBase(const RoadNetwork& net, geo::GridSpec grid)
      : net_(net), grid_(grid) {}

  // Segment ids registered in flat cell `row * cols + col`.
  virtual util::Span<SegmentId> CellSegments(int row, int col) const = 0;

  const RoadNetwork& net_;
  geo::GridSpec grid_;

 private:
  void CollectRing(const geo::Point& p, int ring,
                   std::vector<SegmentCandidate>* out) const;
};

// Grid bounds used by every index layout: network bounds padded by 1 m
// against degenerate boxes. The format-v3 loader recomputes the identical
// grid from the mapped vertices, so a precomputed CSR stays valid.
geo::BoundingBox SpatialIndexPaddedBounds(const RoadNetwork& net);

// Flat CSR layout: segment ids of cell c live at ids[off[c], off[c+1]),
// ascending. The two arrays are either built here or adopted zero-copy from
// an mmap'ed format-v3 file (docs/formats.md).
class SpatialIndex : public SpatialIndexBase {
 public:
  explicit SpatialIndex(const RoadNetwork& net, double cell_size_m = 250.0);

  // Zero-copy layout: adopts a precomputed CSR. `cell_off` has
  // grid.num_cells() + 1 entries and `cell_ids` has cell_off[num_cells]
  // entries; `backing` (the mapped file) is held alive. The caller (the v3
  // loader) validates shape before constructing.
  SpatialIndex(const RoadNetwork& net, double cell_size_m,
               const uint64_t* cell_off, const SegmentId* cell_ids,
               std::shared_ptr<const void> backing);

  // -- Raw flat sections (format-v3 writer, docs/formats.md) -----------------
  util::Span<uint64_t> cell_offsets_span() const { return cell_off_.span(); }
  util::Span<SegmentId> cell_ids_span() const { return cell_ids_.span(); }
  double cell_size() const { return grid_.cell_size(); }
  bool zero_copy() const { return backing_ != nullptr; }

 protected:
  util::Span<SegmentId> CellSegments(int row, int col) const override;

 private:
  util::ArrayView<uint64_t> cell_off_;  // num_cells + 1
  util::ArrayView<SegmentId> cell_ids_;
  std::shared_ptr<const void> backing_;
};

// Tile-sharded layout: the same global grid, with per-cell lists partitioned
// into region tiles (geo::TileRouter). A lookup routes to the single shard
// owning the touched cell, so concurrent serving traffic on different city
// regions stays on disjoint arrays. Per-cell contents and order match
// SpatialIndex exactly, hence identical query results.
class ShardedSpatialIndex : public SpatialIndexBase {
 public:
  ShardedSpatialIndex(const RoadNetwork& net, double cell_size_m = 250.0,
                      int target_shards = 16);

  int num_shards() const { return router_.num_shards(); }
  // Shard that queries at `p` route to.
  int ShardOf(const geo::Point& p) const { return router_.ShardOf(p); }
  const geo::TileRouter& router() const { return router_; }

 protected:
  util::Span<SegmentId> CellSegments(int row, int col) const override;

 private:
  struct Shard {
    std::vector<uint64_t> cell_off;  // local cells + 1
    std::vector<SegmentId> cell_ids;
  };

  geo::TileRouter router_;
  std::vector<Shard> shards_;
};

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_SPATIAL_INDEX_H_
