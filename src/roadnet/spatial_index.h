#ifndef DEEPST_ROADNET_SPATIAL_INDEX_H_
#define DEEPST_ROADNET_SPATIAL_INDEX_H_

#include <vector>

#include "geo/grid.h"
#include "roadnet/road_network.h"

namespace deepst {
namespace roadnet {

// A segment candidate returned by a nearest-segment query.
struct SegmentCandidate {
  SegmentId segment = kInvalidSegment;
  geo::Projection projection;  // projection of the query point
};

// Uniform-grid spatial index over road segments, used by map matching
// (candidate generation) and destination snapping (WSP baseline, stop
// model). Each segment is registered in every cell its polyline's bounding
// box overlaps.
class SpatialIndex {
 public:
  explicit SpatialIndex(const RoadNetwork& net, double cell_size_m = 250.0);

  // Segments whose projection distance to `p` is <= radius_m, sorted by
  // ascending distance.
  std::vector<SegmentCandidate> SegmentsNear(const geo::Point& p,
                                             double radius_m) const;

  // Up to `k` nearest segments (expanding ring search), sorted ascending.
  std::vector<SegmentCandidate> NearestSegments(const geo::Point& p,
                                                int k) const;

  // Single nearest segment (kInvalidSegment only for an empty network).
  SegmentCandidate Nearest(const geo::Point& p) const;

 private:
  std::vector<SegmentCandidate> CollectRing(const geo::Point& p,
                                            int ring) const;

  const RoadNetwork& net_;
  geo::GridSpec grid_;
  std::vector<std::vector<SegmentId>> cells_;
};

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_SPATIAL_INDEX_H_
