#ifndef DEEPST_ROADNET_ROAD_NETWORK_H_
#define DEEPST_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "geo/point.h"
#include "geo/polyline.h"
#include "util/span.h"
#include "util/status.h"

namespace deepst {
namespace roadnet {

using VertexId = int32_t;
using SegmentId = int32_t;
constexpr SegmentId kInvalidSegment = -1;
constexpr VertexId kInvalidVertex = -1;

// Functional class of a road segment. Arterials are faster and preferred by
// "highway-loving" drivers in the trip generator -- this is what creates the
// long-range sequential dependency in routes that the paper's GRU encoder
// exploits (DESIGN.md, substitution table).
enum class RoadClass : uint8_t { kLocal = 0, kArterial = 1, kHighway = 2 };

struct Vertex {
  geo::Point pos;
};
static_assert(sizeof(Vertex) == 16);

// Fixed-layout segment record. This struct doubles as the on-disk format-v3
// record (docs/formats.md), so it is a POD with explicit padding: zeroed pad
// bytes keep serialized images byte-deterministic for the CRC footer. The
// polyline lives in the network's shared point pool at
// [poly_start, poly_start + poly_len).
struct Segment {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  SegmentId reverse = kInvalidSegment;  // opposite-direction twin, if any
  RoadClass road_class = RoadClass::kLocal;
  uint8_t pad0[3] = {0, 0, 0};
  double length_m = 0.0;
  double speed_limit_mps = 13.9;  // ~50 km/h
  uint64_t poly_start = 0;        // first point in the network point pool
  uint32_t poly_len = 0;          // >= 2 points, [0] at `from`
  uint32_t pad1 = 0;
};
static_assert(sizeof(Segment) == 48);
static_assert(std::is_trivially_copyable_v<Segment>);

// Directed road-network graph. Vertices are crossroads; directed segments
// (edges) are the tokens of routes (paper Definition 1). After all
// vertices/segments are added, Finalize() builds adjacency and the
// neighbor-slot indexing that DeepST's softmax head uses: the successors of
// segment e (segments leaving e's end vertex) are sorted by id, and the
// position of a successor in that list is its "slot" in [0, MaxOutDegree).
//
// Storage is flat: vertices, segments, the polyline point pool and the CSR
// adjacency arrays are each one contiguous array. They are either heap-owned
// (incremental construction + Finalize) or borrowed zero-copy from an
// mmap'ed format-v3 file via AdoptFlatStorage -- queries are identical over
// both.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  // -- Construction ----------------------------------------------------------
  VertexId AddVertex(geo::Point pos);
  // Adds a straight segment between two vertices (polyline from positions).
  SegmentId AddSegment(VertexId from, VertexId to, double speed_limit_mps,
                       RoadClass road_class = RoadClass::kLocal);
  // Adds a segment with an explicit polyline.
  SegmentId AddSegmentWithPolyline(VertexId from, VertexId to,
                                   std::vector<geo::Point> polyline,
                                   double speed_limit_mps,
                                   RoadClass road_class = RoadClass::kLocal);
  // Marks a and b as each other's reverse twin.
  void LinkReverse(SegmentId a, SegmentId b);
  // Builds adjacency, slots, bounding box. Must be called once after
  // construction and before any query.
  void Finalize();
  bool finalized() const { return finalized_; }

  // Flat borrowed storage for zero-copy loads. All arrays must stay alive
  // for the lifetime of the network; `backing` (e.g. the mmap'ed file) is
  // held to guarantee that. Adjacency must satisfy the same invariants
  // Finalize() establishes; the format-v3 loader validates before adopting.
  struct FlatStorageRefs {
    const Vertex* vertices = nullptr;
    uint64_t num_vertices = 0;
    const Segment* segments = nullptr;
    uint64_t num_segments = 0;
    const geo::Point* points = nullptr;
    uint64_t num_points = 0;
    const uint64_t* vout_off = nullptr;   // num_vertices + 1 offsets
    const SegmentId* vout_ids = nullptr;  // vout_off[num_vertices] ids
    const uint64_t* vin_off = nullptr;    // num_vertices + 1 offsets
    const SegmentId* vin_ids = nullptr;   // vin_off[num_vertices] ids
  };
  void AdoptFlatStorage(const FlatStorageRefs& refs,
                        std::shared_ptr<const void> backing);

  // -- Topology --------------------------------------------------------------
  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_segments() const { return static_cast<int>(segments_.size()); }
  const Vertex& vertex(VertexId v) const;
  const Segment& segment(SegmentId s) const;
  // Polyline of segment `s` as a view into the shared point pool.
  geo::PointSpan polyline(SegmentId s) const;

  // Successor segments of `s` (sorted by id), i.e. segments starting at
  // s.to.
  util::Span<SegmentId> OutSegments(SegmentId s) const;
  // Predecessor segments of `s` (segments ending at s.from), sorted by id.
  util::Span<SegmentId> InSegments(SegmentId s) const;
  // Segments leaving vertex v.
  util::Span<SegmentId> SegmentsFromVertex(VertexId v) const;

  int OutDegree(SegmentId s) const {
    return static_cast<int>(OutSegments(s).size());
  }
  // max_{e} |OutSegments(e)| -- the softmax head width N_max (paper IV-A).
  int MaxOutDegree() const { return max_out_degree_; }

  // Slot of `to` among OutSegments(from); -1 when not adjacent.
  int NeighborSlot(SegmentId from, SegmentId to) const;
  // Inverse mapping; kInvalidSegment when the slot is empty.
  SegmentId SlotToSegment(SegmentId from, int slot) const;
  // True when `to` directly follows `from`.
  bool AreConsecutive(SegmentId from, SegmentId to) const {
    return NeighborSlot(from, to) >= 0;
  }

  // -- Geometry ----------------------------------------------------------------
  geo::Point SegmentStart(SegmentId s) const;
  geo::Point SegmentEnd(SegmentId s) const;
  geo::Point SegmentMidpoint(SegmentId s) const;
  // Projects p onto the segment's polyline.
  geo::Projection ProjectToSegment(const geo::Point& p, SegmentId s) const;
  const geo::BoundingBox& bounds() const { return bounds_; }

  // Free-flow traversal time of a segment in seconds.
  double FreeFlowTime(SegmentId s) const;

  // Validates that `route` is a sequence of consecutive segments.
  util::Status ValidateRoute(const std::vector<SegmentId>& route) const;
  // Total length of a route in meters.
  double RouteLength(const std::vector<SegmentId>& route) const;

  // -- Raw flat sections (format-v3 writer, docs/formats.md) -----------------
  util::Span<Vertex> vertices_span() const { return vertices_.span(); }
  util::Span<Segment> segments_span() const { return segments_.span(); }
  util::Span<geo::Point> points_span() const { return points_.span(); }
  util::Span<uint64_t> vout_offsets_span() const { return vout_off_.span(); }
  util::Span<SegmentId> vout_ids_span() const { return vout_ids_.span(); }
  util::Span<uint64_t> vin_offsets_span() const { return vin_off_.span(); }
  util::Span<SegmentId> vin_ids_span() const { return vin_ids_.span(); }
  // True when topology is borrowed from a mapped file rather than heap-owned.
  bool zero_copy() const { return backing_ != nullptr; }

 private:
  util::ArrayView<Vertex> vertices_;
  util::ArrayView<Segment> segments_;
  util::ArrayView<geo::Point> points_;  // shared polyline point pool
  // CSR adjacency over vertices: out/in segment ids of vertex v live at
  // ids[off[v], off[v+1]), ascending.
  util::ArrayView<uint64_t> vout_off_;
  util::ArrayView<SegmentId> vout_ids_;
  util::ArrayView<uint64_t> vin_off_;
  util::ArrayView<SegmentId> vin_ids_;
  geo::BoundingBox bounds_;
  int max_out_degree_ = 0;
  bool finalized_ = false;
  std::shared_ptr<const void> backing_;  // keeps borrowed storage alive
};

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_ROAD_NETWORK_H_
