#ifndef DEEPST_ROADNET_ROAD_NETWORK_H_
#define DEEPST_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "geo/polyline.h"
#include "util/status.h"

namespace deepst {
namespace roadnet {

using VertexId = int32_t;
using SegmentId = int32_t;
constexpr SegmentId kInvalidSegment = -1;
constexpr VertexId kInvalidVertex = -1;

// Functional class of a road segment. Arterials are faster and preferred by
// "highway-loving" drivers in the trip generator -- this is what creates the
// long-range sequential dependency in routes that the paper's GRU encoder
// exploits (DESIGN.md, substitution table).
enum class RoadClass : uint8_t { kLocal = 0, kArterial = 1 };

struct Vertex {
  geo::Point pos;
};

struct Segment {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  std::vector<geo::Point> polyline;  // >= 2 points, polyline[0] at `from`
  double length_m = 0.0;
  double speed_limit_mps = 13.9;  // ~50 km/h
  RoadClass road_class = RoadClass::kLocal;
  SegmentId reverse = kInvalidSegment;  // opposite-direction twin, if any
};

// Directed road-network graph. Vertices are crossroads; directed segments
// (edges) are the tokens of routes (paper Definition 1). After all
// vertices/segments are added, Finalize() builds adjacency and the
// neighbor-slot indexing that DeepST's softmax head uses: the successors of
// segment e (segments leaving e's end vertex) are sorted by id, and the
// position of a successor in that list is its "slot" in [0, MaxOutDegree).
class RoadNetwork {
 public:
  RoadNetwork() = default;

  // -- Construction ----------------------------------------------------------
  VertexId AddVertex(geo::Point pos);
  // Adds a straight segment between two vertices (polyline from positions).
  SegmentId AddSegment(VertexId from, VertexId to, double speed_limit_mps,
                       RoadClass road_class = RoadClass::kLocal);
  // Adds a segment with an explicit polyline.
  SegmentId AddSegmentWithPolyline(VertexId from, VertexId to,
                                   std::vector<geo::Point> polyline,
                                   double speed_limit_mps,
                                   RoadClass road_class = RoadClass::kLocal);
  // Marks a and b as each other's reverse twin.
  void LinkReverse(SegmentId a, SegmentId b);
  // Builds adjacency, slots, bounding box. Must be called once after
  // construction and before any query.
  void Finalize();
  bool finalized() const { return finalized_; }

  // -- Topology --------------------------------------------------------------
  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_segments() const { return static_cast<int>(segments_.size()); }
  const Vertex& vertex(VertexId v) const;
  const Segment& segment(SegmentId s) const;

  // Successor segments of `s` (sorted by id), i.e. segments starting at
  // s.to.
  const std::vector<SegmentId>& OutSegments(SegmentId s) const;
  // Predecessor segments of `s` (segments ending at s.from).
  const std::vector<SegmentId>& InSegments(SegmentId s) const;
  // Segments leaving vertex v.
  const std::vector<SegmentId>& SegmentsFromVertex(VertexId v) const;

  int OutDegree(SegmentId s) const {
    return static_cast<int>(OutSegments(s).size());
  }
  // max_{e} |OutSegments(e)| -- the softmax head width N_max (paper IV-A).
  int MaxOutDegree() const { return max_out_degree_; }

  // Slot of `to` among OutSegments(from); -1 when not adjacent.
  int NeighborSlot(SegmentId from, SegmentId to) const;
  // Inverse mapping; kInvalidSegment when the slot is empty.
  SegmentId SlotToSegment(SegmentId from, int slot) const;
  // True when `to` directly follows `from`.
  bool AreConsecutive(SegmentId from, SegmentId to) const {
    return NeighborSlot(from, to) >= 0;
  }

  // -- Geometry ----------------------------------------------------------------
  geo::Point SegmentStart(SegmentId s) const;
  geo::Point SegmentEnd(SegmentId s) const;
  geo::Point SegmentMidpoint(SegmentId s) const;
  // Projects p onto the segment's polyline.
  geo::Projection ProjectToSegment(const geo::Point& p, SegmentId s) const;
  const geo::BoundingBox& bounds() const { return bounds_; }

  // Free-flow traversal time of a segment in seconds.
  double FreeFlowTime(SegmentId s) const;

  // Validates that `route` is a sequence of consecutive segments.
  util::Status ValidateRoute(const std::vector<SegmentId>& route) const;
  // Total length of a route in meters.
  double RouteLength(const std::vector<SegmentId>& route) const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Segment> segments_;
  std::vector<std::vector<SegmentId>> vertex_out_;  // per-vertex out segments
  std::vector<std::vector<SegmentId>> in_segments_;
  geo::BoundingBox bounds_;
  int max_out_degree_ = 0;
  bool finalized_ = false;
};

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_ROAD_NETWORK_H_
