#include "roadnet/road_network.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace deepst {
namespace roadnet {

VertexId RoadNetwork::AddVertex(geo::Point pos) {
  DEEPST_CHECK(!finalized_);
  vertices_.vec().push_back({pos});
  return static_cast<VertexId>(vertices_.vec().size() - 1);
}

SegmentId RoadNetwork::AddSegment(VertexId from, VertexId to,
                                  double speed_limit_mps,
                                  RoadClass road_class) {
  DEEPST_CHECK(from >= 0 && from < static_cast<int>(vertices_.vec().size()));
  DEEPST_CHECK(to >= 0 && to < static_cast<int>(vertices_.vec().size()));
  return AddSegmentWithPolyline(
      from, to, {vertices_.vec()[from].pos, vertices_.vec()[to].pos},
      speed_limit_mps, road_class);
}

SegmentId RoadNetwork::AddSegmentWithPolyline(VertexId from, VertexId to,
                                              std::vector<geo::Point> polyline,
                                              double speed_limit_mps,
                                              RoadClass road_class) {
  DEEPST_CHECK(!finalized_);
  DEEPST_CHECK(from >= 0 && from < static_cast<int>(vertices_.vec().size()));
  DEEPST_CHECK(to >= 0 && to < static_cast<int>(vertices_.vec().size()));
  DEEPST_CHECK_GE(polyline.size(), 2u);
  DEEPST_CHECK_GT(speed_limit_mps, 0.0);
  Segment seg;
  seg.from = from;
  seg.to = to;
  seg.length_m = geo::PolylineLength(polyline);
  seg.poly_start = points_.vec().size();
  seg.poly_len = static_cast<uint32_t>(polyline.size());
  seg.speed_limit_mps = speed_limit_mps;
  seg.road_class = road_class;
  DEEPST_CHECK_GT(seg.length_m, 0.0);
  points_.vec().insert(points_.vec().end(), polyline.begin(), polyline.end());
  segments_.vec().push_back(seg);
  return static_cast<SegmentId>(segments_.vec().size() - 1);
}

void RoadNetwork::LinkReverse(SegmentId a, SegmentId b) {
  DEEPST_CHECK(!finalized_);
  DEEPST_CHECK(a >= 0 && a < static_cast<int>(segments_.vec().size()));
  DEEPST_CHECK(b >= 0 && b < static_cast<int>(segments_.vec().size()));
  segments_.vec()[a].reverse = b;
  segments_.vec()[b].reverse = a;
}

void RoadNetwork::Finalize() {
  DEEPST_CHECK(!finalized_);
  vertices_.Freeze();
  segments_.Freeze();
  points_.Freeze();
  const size_t nv = vertices_.size();
  const size_t ns = segments_.size();

  // CSR adjacency: counting pass, prefix sum, fill. Filling with s ascending
  // leaves every per-vertex id run sorted -- the slot ordering the softmax
  // head depends on -- with no per-vertex sort.
  auto& vout_off = vout_off_.vec();
  auto& vin_off = vin_off_.vec();
  vout_off.assign(nv + 1, 0);
  vin_off.assign(nv + 1, 0);
  for (size_t s = 0; s < ns; ++s) {
    ++vout_off[static_cast<size_t>(segments_[s].from) + 1];
    ++vin_off[static_cast<size_t>(segments_[s].to) + 1];
  }
  for (size_t v = 0; v < nv; ++v) {
    vout_off[v + 1] += vout_off[v];
    vin_off[v + 1] += vin_off[v];
  }
  vout_ids_.vec().resize(ns);
  vin_ids_.vec().resize(ns);
  std::vector<uint64_t> out_cursor(vout_off.begin(), vout_off.end() - 1);
  std::vector<uint64_t> in_cursor(vin_off.begin(), vin_off.end() - 1);
  for (size_t s = 0; s < ns; ++s) {
    vout_ids_.vec()[out_cursor[segments_[s].from]++] =
        static_cast<SegmentId>(s);
    vin_ids_.vec()[in_cursor[segments_[s].to]++] = static_cast<SegmentId>(s);
  }
  vout_off_.Freeze();
  vout_ids_.Freeze();
  vin_off_.Freeze();
  vin_ids_.Freeze();

  finalized_ = true;
  max_out_degree_ = 0;
  for (size_t v = 0; v < nv; ++v) {
    max_out_degree_ = std::max(
        max_out_degree_, static_cast<int>(vout_off_[v + 1] - vout_off_[v]));
  }
  for (size_t v = 0; v < nv; ++v) bounds_.Extend(vertices_[v].pos);
}

void RoadNetwork::AdoptFlatStorage(const FlatStorageRefs& refs,
                                   std::shared_ptr<const void> backing) {
  DEEPST_CHECK(!finalized_);
  vertices_.Adopt(refs.vertices, refs.num_vertices);
  segments_.Adopt(refs.segments, refs.num_segments);
  points_.Adopt(refs.points, refs.num_points);
  vout_off_.Adopt(refs.vout_off, refs.num_vertices + 1);
  vout_ids_.Adopt(refs.vout_ids, refs.num_segments);
  vin_off_.Adopt(refs.vin_off, refs.num_vertices + 1);
  vin_ids_.Adopt(refs.vin_ids, refs.num_segments);
  backing_ = std::move(backing);
  finalized_ = true;
  // Derived scalars are recomputed with alloc-free scans; everything else is
  // served straight out of the borrowed arrays.
  max_out_degree_ = 0;
  for (uint64_t v = 0; v < refs.num_vertices; ++v) {
    max_out_degree_ = std::max(
        max_out_degree_, static_cast<int>(vout_off_[v + 1] - vout_off_[v]));
  }
  for (uint64_t v = 0; v < refs.num_vertices; ++v) {
    bounds_.Extend(vertices_[v].pos);
  }
}

const Vertex& RoadNetwork::vertex(VertexId v) const {
  DEEPST_CHECK(v >= 0 && v < num_vertices());
  return vertices_[v];
}

const Segment& RoadNetwork::segment(SegmentId s) const {
  DEEPST_CHECK(s >= 0 && s < num_segments());
  return segments_[s];
}

geo::PointSpan RoadNetwork::polyline(SegmentId s) const {
  const Segment& seg = segment(s);
  return geo::PointSpan(points_.data() + seg.poly_start, seg.poly_len);
}

util::Span<SegmentId> RoadNetwork::OutSegments(SegmentId s) const {
  DEEPST_CHECK(finalized_);
  return SegmentsFromVertex(segment(s).to);
}

util::Span<SegmentId> RoadNetwork::InSegments(SegmentId s) const {
  DEEPST_CHECK(finalized_);
  const VertexId v = segment(s).from;
  return util::Span<SegmentId>(vin_ids_.data() + vin_off_[v],
                               vin_off_[v + 1] - vin_off_[v]);
}

util::Span<SegmentId> RoadNetwork::SegmentsFromVertex(VertexId v) const {
  DEEPST_CHECK(finalized_);
  DEEPST_CHECK(v >= 0 && v < num_vertices());
  return util::Span<SegmentId>(vout_ids_.data() + vout_off_[v],
                               vout_off_[v + 1] - vout_off_[v]);
}

int RoadNetwork::NeighborSlot(SegmentId from, SegmentId to) const {
  const auto outs = OutSegments(from);
  const auto it = std::lower_bound(outs.begin(), outs.end(), to);
  if (it != outs.end() && *it == to) {
    return static_cast<int>(it - outs.begin());
  }
  return -1;
}

SegmentId RoadNetwork::SlotToSegment(SegmentId from, int slot) const {
  const auto outs = OutSegments(from);
  if (slot < 0 || slot >= static_cast<int>(outs.size())) {
    return kInvalidSegment;
  }
  return outs[static_cast<size_t>(slot)];
}

geo::Point RoadNetwork::SegmentStart(SegmentId s) const {
  return polyline(s).front();
}

geo::Point RoadNetwork::SegmentEnd(SegmentId s) const {
  return polyline(s).back();
}

geo::Point RoadNetwork::SegmentMidpoint(SegmentId s) const {
  return geo::InterpolateAlong(polyline(s), segment(s).length_m / 2.0);
}

geo::Projection RoadNetwork::ProjectToSegment(const geo::Point& p,
                                              SegmentId s) const {
  return geo::ProjectOntoPolyline(p, polyline(s));
}

double RoadNetwork::FreeFlowTime(SegmentId s) const {
  const Segment& seg = segment(s);
  return seg.length_m / seg.speed_limit_mps;
}

util::Status RoadNetwork::ValidateRoute(
    const std::vector<SegmentId>& route) const {
  if (route.empty()) {
    return util::Status::InvalidArgument("empty route");
  }
  for (SegmentId s : route) {
    if (s < 0 || s >= num_segments()) {
      return util::Status::OutOfRange("segment id out of range");
    }
  }
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    if (!AreConsecutive(route[i], route[i + 1])) {
      return util::Status::InvalidArgument(
          util::StrFormat("segments %d -> %d not adjacent",
                          static_cast<int>(route[i]),
                          static_cast<int>(route[i + 1])));
    }
  }
  return util::Status::Ok();
}

double RoadNetwork::RouteLength(const std::vector<SegmentId>& route) const {
  double len = 0.0;
  for (SegmentId s : route) len += segment(s).length_m;
  return len;
}

}  // namespace roadnet
}  // namespace deepst
