#include "roadnet/road_network.h"

#include <algorithm>

#include "util/string_util.h"

namespace deepst {
namespace roadnet {

VertexId RoadNetwork::AddVertex(geo::Point pos) {
  DEEPST_CHECK(!finalized_);
  vertices_.push_back({pos});
  return static_cast<VertexId>(vertices_.size() - 1);
}

SegmentId RoadNetwork::AddSegment(VertexId from, VertexId to,
                                  double speed_limit_mps,
                                  RoadClass road_class) {
  DEEPST_CHECK(from >= 0 && from < num_vertices());
  DEEPST_CHECK(to >= 0 && to < num_vertices());
  return AddSegmentWithPolyline(
      from, to, {vertices_[from].pos, vertices_[to].pos}, speed_limit_mps,
      road_class);
}

SegmentId RoadNetwork::AddSegmentWithPolyline(VertexId from, VertexId to,
                                              std::vector<geo::Point> polyline,
                                              double speed_limit_mps,
                                              RoadClass road_class) {
  DEEPST_CHECK(!finalized_);
  DEEPST_CHECK(from >= 0 && from < num_vertices());
  DEEPST_CHECK(to >= 0 && to < num_vertices());
  DEEPST_CHECK_GE(polyline.size(), 2u);
  DEEPST_CHECK_GT(speed_limit_mps, 0.0);
  Segment seg;
  seg.from = from;
  seg.to = to;
  seg.length_m = geo::PolylineLength(polyline);
  seg.polyline = std::move(polyline);
  seg.speed_limit_mps = speed_limit_mps;
  seg.road_class = road_class;
  DEEPST_CHECK_GT(seg.length_m, 0.0);
  segments_.push_back(std::move(seg));
  return static_cast<SegmentId>(segments_.size() - 1);
}

void RoadNetwork::LinkReverse(SegmentId a, SegmentId b) {
  DEEPST_CHECK(a >= 0 && a < num_segments());
  DEEPST_CHECK(b >= 0 && b < num_segments());
  segments_[a].reverse = b;
  segments_[b].reverse = a;
}

void RoadNetwork::Finalize() {
  DEEPST_CHECK(!finalized_);
  vertex_out_.assign(vertices_.size(), {});
  in_segments_.assign(segments_.size(), {});
  for (SegmentId s = 0; s < num_segments(); ++s) {
    vertex_out_[segments_[s].from].push_back(s);
  }
  for (auto& outs : vertex_out_) {
    std::sort(outs.begin(), outs.end());
  }
  for (SegmentId s = 0; s < num_segments(); ++s) {
    for (SegmentId succ : vertex_out_[segments_[s].to]) {
      in_segments_[succ].push_back(s);
    }
  }
  // Adjacency is complete; queries (used below for max out-degree) are now
  // legal.
  finalized_ = true;
  max_out_degree_ = 0;
  for (SegmentId s = 0; s < num_segments(); ++s) {
    max_out_degree_ = std::max(max_out_degree_, OutDegree(s));
  }
  for (const auto& v : vertices_) bounds_.Extend(v.pos);
}

const Vertex& RoadNetwork::vertex(VertexId v) const {
  DEEPST_CHECK(v >= 0 && v < num_vertices());
  return vertices_[v];
}

const Segment& RoadNetwork::segment(SegmentId s) const {
  DEEPST_CHECK(s >= 0 && s < num_segments());
  return segments_[s];
}

const std::vector<SegmentId>& RoadNetwork::OutSegments(SegmentId s) const {
  DEEPST_CHECK(finalized_);
  return vertex_out_[segment(s).to];
}

const std::vector<SegmentId>& RoadNetwork::InSegments(SegmentId s) const {
  DEEPST_CHECK(finalized_);
  DEEPST_CHECK(s >= 0 && s < num_segments());
  return in_segments_[s];
}

const std::vector<SegmentId>& RoadNetwork::SegmentsFromVertex(
    VertexId v) const {
  DEEPST_CHECK(finalized_);
  DEEPST_CHECK(v >= 0 && v < num_vertices());
  return vertex_out_[v];
}

int RoadNetwork::NeighborSlot(SegmentId from, SegmentId to) const {
  const auto& outs = OutSegments(from);
  const auto it = std::lower_bound(outs.begin(), outs.end(), to);
  if (it != outs.end() && *it == to) {
    return static_cast<int>(it - outs.begin());
  }
  return -1;
}

SegmentId RoadNetwork::SlotToSegment(SegmentId from, int slot) const {
  const auto& outs = OutSegments(from);
  if (slot < 0 || slot >= static_cast<int>(outs.size())) {
    return kInvalidSegment;
  }
  return outs[static_cast<size_t>(slot)];
}

geo::Point RoadNetwork::SegmentStart(SegmentId s) const {
  return segment(s).polyline.front();
}

geo::Point RoadNetwork::SegmentEnd(SegmentId s) const {
  return segment(s).polyline.back();
}

geo::Point RoadNetwork::SegmentMidpoint(SegmentId s) const {
  const Segment& seg = segment(s);
  return geo::InterpolateAlong(seg.polyline, seg.length_m / 2.0);
}

geo::Projection RoadNetwork::ProjectToSegment(const geo::Point& p,
                                              SegmentId s) const {
  return geo::ProjectOntoPolyline(p, segment(s).polyline);
}

double RoadNetwork::FreeFlowTime(SegmentId s) const {
  const Segment& seg = segment(s);
  return seg.length_m / seg.speed_limit_mps;
}

util::Status RoadNetwork::ValidateRoute(
    const std::vector<SegmentId>& route) const {
  if (route.empty()) {
    return util::Status::InvalidArgument("empty route");
  }
  for (SegmentId s : route) {
    if (s < 0 || s >= num_segments()) {
      return util::Status::OutOfRange("segment id out of range");
    }
  }
  for (size_t i = 0; i + 1 < route.size(); ++i) {
    if (!AreConsecutive(route[i], route[i + 1])) {
      return util::Status::InvalidArgument(
          util::StrFormat("segments %d -> %d not adjacent",
                          static_cast<int>(route[i]),
                          static_cast<int>(route[i + 1])));
    }
  }
  return util::Status::Ok();
}

double RoadNetwork::RouteLength(const std::vector<SegmentId>& route) const {
  double len = 0.0;
  for (SegmentId s : route) len += segment(s).length_m;
  return len;
}

}  // namespace roadnet
}  // namespace deepst
