#ifndef DEEPST_ROADNET_GRID_CITY_H_
#define DEEPST_ROADNET_GRID_CITY_H_

#include <memory>

#include "roadnet/road_network.h"
#include "util/rng.h"

namespace deepst {
namespace roadnet {

// Procedural city road-network generator: a jittered grid with arterial
// rows/columns, optional diagonal shortcuts, randomly removed blocks and
// one-way streets. This substitutes for the paper's OpenStreetMap extracts
// of Chengdu / Harbin (DESIGN.md, substitution table) while preserving the
// abstractions DeepST needs: directed segments, bounded out-degree, mixed
// road classes, irregular topology.
struct GridCityConfig {
  int rows = 12;             // vertex rows
  int cols = 12;             // vertex columns
  double spacing_m = 400.0;  // mean block size
  double jitter_m = 60.0;    // positional jitter of crossroads
  int arterial_every = 4;    // every k-th row/col is an arterial
  double local_speed_mps = 8.3;      // ~30 km/h
  double arterial_speed_mps = 16.7;  // ~60 km/h
  double diagonal_prob = 0.06;       // chance of a diagonal shortcut per cell
  double removal_prob = 0.05;        // chance a bidirectional street is absent
  double oneway_prob = 0.05;         // chance a street is one-way
  uint64_t seed = 1;
};

// Builds and finalizes the network. The largest strongly-connected component
// is guaranteed to cover most of the grid for the default parameters; the
// trip generator checks reachability per trip.
std::unique_ptr<RoadNetwork> BuildGridCity(const GridCityConfig& config);

// Two ready-made city presets mirroring the paper's datasets at laptop
// scale: "chengdu-mini" (smaller, denser, more regular) and "harbin-mini"
// (larger, sparser, messier topology -- the paper notes Harbin's network is
// more complex and its trips longer).
GridCityConfig ChengduMiniConfig();
GridCityConfig HarbinMiniConfig();

// Full-scale procedural city: the jittered lattice of BuildGridCity plus the
// macro-structure of a real Chengdu-sized road network -- concentric ring
// roads (lattice streets tangential to one of the ring radii become
// highways), radial arterials fanning out from the center, and rivers
// (sinusoidal east-west bands that sever every crossing street except
// periodic bridges). The default preset yields > 100k directed segments,
// the scale regime the mmap v3 format (docs/formats.md) is built for.
struct ChengduFullConfig {
  GridCityConfig base;        // large lattice; see ChengduFullCityConfig()
  int num_rings = 4;          // concentric ring roads
  int num_radials = 10;       // radial arterial corridors
  int num_rivers = 2;         // sinusoidal rivers crossing the city
  int bridge_every = 6;       // every k-th severed street becomes a bridge
  double river_amplitude_m = 900.0;
  double river_wavelength_m = 14000.0;
  double highway_speed_mps = 22.2;  // ~80 km/h rings/bridges
};

// Preset sized to >= 100k directed segments (ISSUE 6 scale gate).
ChengduFullConfig ChengduFullCityConfig();

std::unique_ptr<RoadNetwork> BuildChengduFull(const ChengduFullConfig& config);

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_GRID_CITY_H_
