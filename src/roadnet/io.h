#ifndef DEEPST_ROADNET_IO_H_
#define DEEPST_ROADNET_IO_H_

#include <memory>
#include <string>

#include "roadnet/road_network.h"
#include "util/status.h"

namespace deepst {
namespace roadnet {

// Binary (de)serialization of road networks, so a procedurally generated (or
// externally converted) network can be stored once and shared across runs
// and tools. The format is versioned; Load rejects unknown versions.
util::Status SaveRoadNetwork(const RoadNetwork& net, const std::string& path);
util::StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path);

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_IO_H_
