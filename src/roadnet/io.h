#ifndef DEEPST_ROADNET_IO_H_
#define DEEPST_ROADNET_IO_H_

#include <memory>
#include <string>

#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "util/status.h"

namespace deepst {
namespace roadnet {

// Binary (de)serialization of road networks, so a procedurally generated (or
// externally converted) network can be stored once and shared across runs
// and tools. The format is versioned; Load rejects unknown versions.
//
// v1/v2 are the streaming record formats (v2 adds a CRC32 footer). v3 is the
// fixed-layout mmap-able format (docs/formats.md): flat sections for
// vertices, segments, the polyline point pool, CSR adjacency, and optionally
// a precomputed spatial-index CSR. Loading a v3 file maps it and serves
// topology straight out of the mapping -- no per-segment heap allocation.

// Writes the streaming v2 format.
util::Status SaveRoadNetwork(const RoadNetwork& net, const std::string& path);

// Writes the fixed-layout v3 format. When `index` is non-null its cell CSR
// is embedded so loads skip spatial-index construction entirely.
util::Status SaveRoadNetworkV3(const RoadNetwork& net, const std::string& path,
                               const SpatialIndex* index = nullptr);

// Loads any supported version; a v3 file is mapped zero-copy (with a
// buffered fallback, util::MappedFile).
util::StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path);

// A network plus its spatial index, sharing one file mapping when both came
// out of a v3 file.
struct LoadedCity {
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<SpatialIndex> index;
};

// Loads the network and a spatial index with `cell_size_m` cells. If the
// file is v3 and embeds a spatial CSR with the same cell size, the index is
// adopted zero-copy from the mapping; otherwise it is built from the loaded
// network.
util::StatusOr<LoadedCity> LoadCity(const std::string& path,
                                    double cell_size_m = 250.0);

// Human-readable report for `deepst_cli inspect`: format version, element
// counts, CRC status, and whether the file loads zero-copy from an mmap.
// Returns InvalidArgument (without reading further) when the magic is not a
// road-network file's, so the CLI can probe file kinds in sequence. When
// `healthy` is given, it is set false for files that describe but fail
// validation (CRC mismatch, unsupported version), so probes can gate on the
// file being servable -- `deepst inspect` exits nonzero on it.
util::StatusOr<std::string> DescribeRoadNetworkFile(const std::string& path,
                                                    bool* healthy = nullptr);

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_IO_H_
