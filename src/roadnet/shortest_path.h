#ifndef DEEPST_ROADNET_SHORTEST_PATH_H_
#define DEEPST_ROADNET_SHORTEST_PATH_H_

#include <functional>
#include <vector>

#include "roadnet/road_network.h"
#include "util/status.h"

namespace deepst {
namespace roadnet {

// Cost of traversing one segment (must be > 0).
using SegmentCostFn = std::function<double(SegmentId)>;
// Extra cost of the transition prev -> next (>= 0); models turn penalties.
using TurnCostFn = std::function<double(SegmentId prev, SegmentId next)>;

struct PathResult {
  std::vector<SegmentId> path;  // source..target inclusive
  double cost = 0.0;
};

struct PathQueryOptions {
  // Segments that may not appear in the path (used by Yen's algorithm and
  // by route recovery to exclude observed detours). Indexed by SegmentId;
  // empty means nothing banned.
  const std::vector<bool>* banned_segments = nullptr;
  // Optional turn cost.
  TurnCostFn turn_cost;
};

// Edge-based Dijkstra from `source` to `target` segment (both inclusive in
// the returned path). The cost of a path [e1..en] is
//   sum_i cost(e_i) + sum_i turn_cost(e_i, e_{i+1}).
// Note: the cost of the source segment itself is included.
// Returns NotFound when target is unreachable.
util::StatusOr<PathResult> ShortestPath(const RoadNetwork& net,
                                        SegmentId source, SegmentId target,
                                        const SegmentCostFn& cost,
                                        const PathQueryOptions& options = {});

// One-to-all variant: distance from `source` to every segment
// (+infinity when unreachable). Used by reachability checks and tests.
std::vector<double> ShortestPathTree(const RoadNetwork& net, SegmentId source,
                                     const SegmentCostFn& cost);

// Convenience cost functions.
SegmentCostFn FreeFlowTimeCost(const RoadNetwork& net);
SegmentCostFn LengthCost(const RoadNetwork& net);

// Yen's k-shortest loopless paths between two segments under `cost` (no turn
// cost; candidate generation for route recovery, Section V-C). Returns up to
// k paths sorted by ascending cost; fewer when the graph does not admit k
// distinct loopless paths.
std::vector<PathResult> KShortestPaths(const RoadNetwork& net,
                                       SegmentId source, SegmentId target,
                                       int k, const SegmentCostFn& cost);

}  // namespace roadnet
}  // namespace deepst

#endif  // DEEPST_ROADNET_SHORTEST_PATH_H_
