#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace deepst {
namespace roadnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  SegmentId seg;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

util::StatusOr<PathResult> ShortestPath(const RoadNetwork& net,
                                        SegmentId source, SegmentId target,
                                        const SegmentCostFn& cost,
                                        const PathQueryOptions& options) {
  DEEPST_CHECK(source >= 0 && source < net.num_segments());
  DEEPST_CHECK(target >= 0 && target < net.num_segments());
  const auto banned = [&](SegmentId s) {
    return options.banned_segments != nullptr &&
           (*options.banned_segments)[static_cast<size_t>(s)];
  };
  if (banned(source) || banned(target)) {
    return util::Status::NotFound("endpoint banned");
  }

  std::vector<double> dist(net.num_segments(), kInf);
  std::vector<SegmentId> prev(net.num_segments(), kInvalidSegment);
  std::vector<bool> done(net.num_segments(), false);
  MinQueue queue;
  dist[source] = cost(source);
  DEEPST_CHECK_GT(dist[source], 0.0);
  queue.push({dist[source], source});

  while (!queue.empty()) {
    const auto [d, s] = queue.top();
    queue.pop();
    if (done[s]) continue;
    done[s] = true;
    if (s == target) break;
    for (SegmentId nxt : net.OutSegments(s)) {
      if (done[nxt] || banned(nxt)) continue;
      double w = cost(nxt);
      DEEPST_CHECK_GT(w, 0.0);
      if (options.turn_cost) w += options.turn_cost(s, nxt);
      if (d + w < dist[nxt]) {
        dist[nxt] = d + w;
        prev[nxt] = s;
        queue.push({dist[nxt], nxt});
      }
    }
  }

  if (!done[target]) {
    return util::Status::NotFound("target unreachable");
  }
  PathResult result;
  result.cost = dist[target];
  for (SegmentId s = target; s != kInvalidSegment; s = prev[s]) {
    result.path.push_back(s);
    if (s == source) break;
  }
  std::reverse(result.path.begin(), result.path.end());
  DEEPST_CHECK_EQ(result.path.front(), source);
  return result;
}

std::vector<double> ShortestPathTree(const RoadNetwork& net, SegmentId source,
                                     const SegmentCostFn& cost) {
  std::vector<double> dist(net.num_segments(), kInf);
  std::vector<bool> done(net.num_segments(), false);
  MinQueue queue;
  dist[source] = cost(source);
  queue.push({dist[source], source});
  while (!queue.empty()) {
    const auto [d, s] = queue.top();
    queue.pop();
    if (done[s]) continue;
    done[s] = true;
    for (SegmentId nxt : net.OutSegments(s)) {
      if (done[nxt]) continue;
      const double w = cost(nxt);
      if (d + w < dist[nxt]) {
        dist[nxt] = d + w;
        queue.push({dist[nxt], nxt});
      }
    }
  }
  return dist;
}

SegmentCostFn FreeFlowTimeCost(const RoadNetwork& net) {
  return [&net](SegmentId s) { return net.FreeFlowTime(s); };
}

SegmentCostFn LengthCost(const RoadNetwork& net) {
  return [&net](SegmentId s) { return net.segment(s).length_m; };
}

std::vector<PathResult> KShortestPaths(const RoadNetwork& net,
                                       SegmentId source, SegmentId target,
                                       int k, const SegmentCostFn& cost) {
  DEEPST_CHECK_GE(k, 1);
  std::vector<PathResult> found;
  auto first = ShortestPath(net, source, target, cost);
  if (!first.ok()) return found;
  found.push_back(std::move(first).value());

  // Candidate set keyed by cost, deduplicated by path.
  auto cmp = [](const PathResult& a, const PathResult& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.path < b.path;
  };
  std::set<PathResult, decltype(cmp)> candidates(cmp);

  std::vector<bool> banned(net.num_segments(), false);
  while (static_cast<int>(found.size()) < k) {
    const std::vector<SegmentId>& last = found.back().path;
    // Spur from every prefix of the last found path.
    for (size_t i = 0; i + 1 < last.size(); ++i) {
      const SegmentId spur = last[i];
      std::fill(banned.begin(), banned.end(), false);
      // Ban the next edge of every found path sharing this root prefix.
      for (const PathResult& p : found) {
        if (p.path.size() > i &&
            std::equal(last.begin(), last.begin() + static_cast<long>(i) + 1,
                       p.path.begin())) {
          if (p.path.size() > i + 1) banned[p.path[i + 1]] = true;
        }
      }
      // Ban root-path segments (loopless requirement), except the spur.
      for (size_t j = 0; j < i; ++j) banned[last[j]] = true;

      PathQueryOptions opts;
      opts.banned_segments = &banned;
      auto spur_path = ShortestPath(net, spur, target, cost, opts);
      if (!spur_path.ok()) continue;

      PathResult total;
      total.path.assign(last.begin(), last.begin() + static_cast<long>(i));
      total.path.insert(total.path.end(), spur_path.value().path.begin(),
                        spur_path.value().path.end());
      total.cost = spur_path.value().cost;
      for (size_t j = 0; j < i; ++j) total.cost += cost(last[j]);
      candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    // Pop the best candidate not already in `found`.
    bool pushed = false;
    while (!candidates.empty()) {
      PathResult best = *candidates.begin();
      candidates.erase(candidates.begin());
      const bool duplicate =
          std::any_of(found.begin(), found.end(), [&](const PathResult& p) {
            return p.path == best.path;
          });
      if (!duplicate) {
        found.push_back(std::move(best));
        pushed = true;
        break;
      }
    }
    if (!pushed) break;
  }
  return found;
}

}  // namespace roadnet
}  // namespace deepst
