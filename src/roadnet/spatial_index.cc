#include "roadnet/spatial_index.h"

#include <algorithm>
#include <unordered_set>

namespace deepst {
namespace roadnet {
namespace {

geo::BoundingBox PaddedBounds(const RoadNetwork& net) {
  geo::BoundingBox box = net.bounds();
  // Guard against degenerate boxes.
  box.Extend({box.min.x - 1.0, box.min.y - 1.0});
  box.Extend({box.max.x + 1.0, box.max.y + 1.0});
  return box;
}

}  // namespace

SpatialIndex::SpatialIndex(const RoadNetwork& net, double cell_size_m)
    : net_(net), grid_(PaddedBounds(net), cell_size_m) {
  DEEPST_CHECK(net.finalized());
  cells_.assign(static_cast<size_t>(grid_.num_cells()), {});
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    geo::BoundingBox sb;
    for (const geo::Point& p : net.segment(s).polyline) sb.Extend(p);
    const int r0 = grid_.RowOf(sb.min);
    const int r1 = grid_.RowOf(sb.max);
    const int c0 = grid_.ColOf(sb.min);
    const int c1 = grid_.ColOf(sb.max);
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        cells_[static_cast<size_t>(r) * grid_.cols() + c].push_back(s);
      }
    }
  }
}

std::vector<SegmentCandidate> SpatialIndex::CollectRing(const geo::Point& p,
                                                        int ring) const {
  std::vector<SegmentCandidate> out;
  const int pr = grid_.RowOf(p);
  const int pc = grid_.ColOf(p);
  for (int r = pr - ring; r <= pr + ring; ++r) {
    if (r < 0 || r >= grid_.rows()) continue;
    for (int c = pc - ring; c <= pc + ring; ++c) {
      if (c < 0 || c >= grid_.cols()) continue;
      // Only the ring boundary (interior already collected).
      if (ring > 0 && std::abs(r - pr) != ring && std::abs(c - pc) != ring) {
        continue;
      }
      for (SegmentId s : cells_[static_cast<size_t>(r) * grid_.cols() + c]) {
        out.push_back({s, net_.ProjectToSegment(p, s)});
      }
    }
  }
  return out;
}

std::vector<SegmentCandidate> SpatialIndex::SegmentsNear(
    const geo::Point& p, double radius_m) const {
  const int max_ring =
      static_cast<int>(radius_m / grid_.cell_size()) + 1;
  std::unordered_set<SegmentId> seen;
  std::vector<SegmentCandidate> out;
  for (int ring = 0; ring <= max_ring; ++ring) {
    for (auto& cand : CollectRing(p, ring)) {
      if (!seen.insert(cand.segment).second) continue;
      if (cand.projection.distance <= radius_m) {
        out.push_back(std::move(cand));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentCandidate& a, const SegmentCandidate& b) {
              return a.projection.distance < b.projection.distance;
            });
  return out;
}

std::vector<SegmentCandidate> SpatialIndex::NearestSegments(
    const geo::Point& p, int k) const {
  DEEPST_CHECK_GE(k, 1);
  std::unordered_set<SegmentId> seen;
  std::vector<SegmentCandidate> out;
  const int max_ring = std::max(grid_.rows(), grid_.cols());
  for (int ring = 0; ring <= max_ring; ++ring) {
    for (auto& cand : CollectRing(p, ring)) {
      if (seen.insert(cand.segment).second) out.push_back(std::move(cand));
    }
    // Once we have k candidates AND the next ring cannot contain anything
    // closer than the current k-th distance, stop. A segment in ring r+1 is
    // at least r * cell_size away.
    if (static_cast<int>(out.size()) >= k) {
      std::sort(out.begin(), out.end(),
                [](const SegmentCandidate& a, const SegmentCandidate& b) {
                  return a.projection.distance < b.projection.distance;
                });
      const double kth = out[static_cast<size_t>(k) - 1].projection.distance;
      if (kth <= ring * grid_.cell_size()) break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentCandidate& a, const SegmentCandidate& b) {
              return a.projection.distance < b.projection.distance;
            });
  if (static_cast<int>(out.size()) > k) out.resize(static_cast<size_t>(k));
  return out;
}

SegmentCandidate SpatialIndex::Nearest(const geo::Point& p) const {
  auto v = NearestSegments(p, 1);
  if (v.empty()) return {};
  return v.front();
}

}  // namespace roadnet
}  // namespace deepst
