#include "roadnet/spatial_index.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace deepst {
namespace roadnet {
namespace {

// Cells covered by segment `s`: every cell its polyline bounding box
// overlaps. Calls fn(row, col) for each.
template <typename Fn>
void ForEachCoveredCell(const RoadNetwork& net, const geo::GridSpec& grid,
                        SegmentId s, Fn&& fn) {
  geo::BoundingBox sb;
  for (const geo::Point& p : net.polyline(s)) sb.Extend(p);
  const int r0 = grid.RowOf(sb.min);
  const int r1 = grid.RowOf(sb.max);
  const int c0 = grid.ColOf(sb.min);
  const int c1 = grid.ColOf(sb.max);
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      fn(r, c);
    }
  }
}

}  // namespace

geo::BoundingBox SpatialIndexPaddedBounds(const RoadNetwork& net) {
  geo::BoundingBox box = net.bounds();
  if (box.min.x > box.max.x || box.min.y > box.max.y) {
    // Empty network: bounds() is still the inverted sentinel box, and
    // padding it would produce a ~2e18 m wide grid. Any small grid serves
    // the (necessarily empty) queries.
    box = geo::BoundingBox();
    box.Extend({-1.0, -1.0});
    box.Extend({1.0, 1.0});
    return box;
  }
  // Guard against degenerate boxes.
  box.Extend({box.min.x - 1.0, box.min.y - 1.0});
  box.Extend({box.max.x + 1.0, box.max.y + 1.0});
  return box;
}

void SpatialIndexBase::CollectRing(const geo::Point& p, int ring,
                                   std::vector<SegmentCandidate>* out) const {
  const int pr = grid_.RowOf(p);
  const int pc = grid_.ColOf(p);
  for (int r = pr - ring; r <= pr + ring; ++r) {
    if (r < 0 || r >= grid_.rows()) continue;
    for (int c = pc - ring; c <= pc + ring; ++c) {
      if (c < 0 || c >= grid_.cols()) continue;
      // Only the ring boundary (interior already collected).
      if (ring > 0 && std::abs(r - pr) != ring && std::abs(c - pc) != ring) {
        continue;
      }
      for (SegmentId s : CellSegments(r, c)) {
        out->push_back({s, net_.ProjectToSegment(p, s)});
      }
    }
  }
}

std::vector<SegmentCandidate> SpatialIndexBase::SegmentsNear(
    const geo::Point& p, double radius_m) const {
  const int max_ring =
      static_cast<int>(radius_m / grid_.cell_size()) + 1;
  std::unordered_set<SegmentId> seen;
  std::vector<SegmentCandidate> out;
  std::vector<SegmentCandidate> ring_out;
  for (int ring = 0; ring <= max_ring; ++ring) {
    ring_out.clear();
    CollectRing(p, ring, &ring_out);
    for (auto& cand : ring_out) {
      if (!seen.insert(cand.segment).second) continue;
      if (cand.projection.distance <= radius_m) {
        out.push_back(std::move(cand));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentCandidate& a, const SegmentCandidate& b) {
              return a.projection.distance < b.projection.distance;
            });
  return out;
}

std::vector<SegmentCandidate> SpatialIndexBase::NearestSegments(
    const geo::Point& p, int k) const {
  DEEPST_CHECK_GE(k, 1);
  std::unordered_set<SegmentId> seen;
  std::vector<SegmentCandidate> out;
  std::vector<SegmentCandidate> ring_out;
  const int max_ring = std::max(grid_.rows(), grid_.cols());
  for (int ring = 0; ring <= max_ring; ++ring) {
    ring_out.clear();
    CollectRing(p, ring, &ring_out);
    for (auto& cand : ring_out) {
      if (seen.insert(cand.segment).second) out.push_back(std::move(cand));
    }
    // Once we have k candidates AND the next ring cannot contain anything
    // closer than the current k-th distance, stop. A segment in ring r+1 is
    // at least r * cell_size away.
    if (static_cast<int>(out.size()) >= k) {
      std::sort(out.begin(), out.end(),
                [](const SegmentCandidate& a, const SegmentCandidate& b) {
                  return a.projection.distance < b.projection.distance;
                });
      const double kth = out[static_cast<size_t>(k) - 1].projection.distance;
      if (kth <= ring * grid_.cell_size()) break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentCandidate& a, const SegmentCandidate& b) {
              return a.projection.distance < b.projection.distance;
            });
  if (static_cast<int>(out.size()) > k) out.resize(static_cast<size_t>(k));
  return out;
}

SegmentCandidate SpatialIndexBase::Nearest(const geo::Point& p) const {
  auto v = NearestSegments(p, 1);
  if (v.empty()) return {};
  return v.front();
}

SpatialIndex::SpatialIndex(const RoadNetwork& net, double cell_size_m)
    : SpatialIndexBase(
          net, geo::GridSpec(SpatialIndexPaddedBounds(net), cell_size_m)) {
  DEEPST_CHECK(net.finalized());
  const size_t nc = static_cast<size_t>(grid_.num_cells());
  // Two-pass CSR build: count, prefix-sum, fill. Filling with s ascending
  // keeps every per-cell list sorted by id, matching the order queries (and
  // the v2 per-cell-vector layout) always saw.
  auto& off = cell_off_.vec();
  off.assign(nc + 1, 0);
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    ForEachCoveredCell(net, grid_, s, [&](int r, int c) {
      ++off[static_cast<size_t>(r) * grid_.cols() + c + 1];
    });
  }
  for (size_t cell = 0; cell < nc; ++cell) off[cell + 1] += off[cell];
  auto& ids = cell_ids_.vec();
  ids.resize(off[nc]);
  std::vector<uint64_t> cursor(off.begin(), off.end() - 1);
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    ForEachCoveredCell(net, grid_, s, [&](int r, int c) {
      ids[cursor[static_cast<size_t>(r) * grid_.cols() + c]++] = s;
    });
  }
  cell_off_.Freeze();
  cell_ids_.Freeze();
}

SpatialIndex::SpatialIndex(const RoadNetwork& net, double cell_size_m,
                           const uint64_t* cell_off, const SegmentId* cell_ids,
                           std::shared_ptr<const void> backing)
    : SpatialIndexBase(
          net, geo::GridSpec(SpatialIndexPaddedBounds(net), cell_size_m)) {
  DEEPST_CHECK(net.finalized());
  const size_t nc = static_cast<size_t>(grid_.num_cells());
  cell_off_.Adopt(cell_off, nc + 1);
  cell_ids_.Adopt(cell_ids, cell_off[nc]);
  backing_ = std::move(backing);
}

util::Span<SegmentId> SpatialIndex::CellSegments(int row, int col) const {
  const size_t cell = static_cast<size_t>(row) * grid_.cols() + col;
  return util::Span<SegmentId>(cell_ids_.data() + cell_off_[cell],
                               cell_off_[cell + 1] - cell_off_[cell]);
}

ShardedSpatialIndex::ShardedSpatialIndex(const RoadNetwork& net,
                                         double cell_size_m, int target_shards)
    : SpatialIndexBase(
          net, geo::GridSpec(SpatialIndexPaddedBounds(net), cell_size_m)),
      router_(grid_, target_shards) {
  DEEPST_CHECK(net.finalized());
  shards_.resize(static_cast<size_t>(router_.num_shards()));
  for (int sh = 0; sh < router_.num_shards(); ++sh) {
    shards_[sh].cell_off.assign(
        static_cast<size_t>(router_.RangeOf(sh).num_cells()) + 1, 0);
  }
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    ForEachCoveredCell(net, grid_, s, [&](int r, int c) {
      const int sh = router_.ShardOfCell(r, c);
      ++shards_[sh].cell_off[static_cast<size_t>(
                                 router_.LocalCell(sh, r, c)) +
                             1];
    });
  }
  std::vector<std::vector<uint64_t>> cursors(shards_.size());
  for (size_t sh = 0; sh < shards_.size(); ++sh) {
    auto& off = shards_[sh].cell_off;
    for (size_t cell = 0; cell + 1 < off.size(); ++cell) {
      off[cell + 1] += off[cell];
    }
    shards_[sh].cell_ids.resize(off.back());
    cursors[sh].assign(off.begin(), off.end() - 1);
  }
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    ForEachCoveredCell(net, grid_, s, [&](int r, int c) {
      const int sh = router_.ShardOfCell(r, c);
      shards_[sh].cell_ids[cursors[sh][router_.LocalCell(sh, r, c)]++] = s;
    });
  }
}

util::Span<SegmentId> ShardedSpatialIndex::CellSegments(int row,
                                                        int col) const {
  const int sh = router_.ShardOfCell(row, col);
  const Shard& shard = shards_[sh];
  const size_t local = static_cast<size_t>(router_.LocalCell(sh, row, col));
  return util::Span<SegmentId>(shard.cell_ids.data() + shard.cell_off[local],
                               shard.cell_off[local + 1] -
                                   shard.cell_off[local]);
}

}  // namespace roadnet
}  // namespace deepst
