#include "roadnet/grid_city.h"

#include <vector>

namespace deepst {
namespace roadnet {
namespace {

struct StreetSpec {
  VertexId a;
  VertexId b;
  bool arterial;
};

}  // namespace

std::unique_ptr<RoadNetwork> BuildGridCity(const GridCityConfig& config) {
  DEEPST_CHECK_GE(config.rows, 2);
  DEEPST_CHECK_GE(config.cols, 2);
  util::Rng rng(config.seed);
  auto net = std::make_unique<RoadNetwork>();

  // Vertices on a jittered lattice.
  std::vector<VertexId> vid(static_cast<size_t>(config.rows) * config.cols);
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const double jx = rng.Gaussian(0.0, config.jitter_m);
      const double jy = rng.Gaussian(0.0, config.jitter_m);
      vid[static_cast<size_t>(r) * config.cols + c] = net->AddVertex(
          {c * config.spacing_m + jx, r * config.spacing_m + jy});
    }
  }
  auto at = [&](int r, int c) {
    return vid[static_cast<size_t>(r) * config.cols + c];
  };
  auto is_arterial_row = [&](int r) {
    return config.arterial_every > 0 && r % config.arterial_every == 0;
  };

  // Street specs: horizontal, vertical, optional diagonals.
  std::vector<StreetSpec> streets;
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c + 1 < config.cols; ++c) {
      streets.push_back({at(r, c), at(r, c + 1), is_arterial_row(r)});
    }
  }
  for (int c = 0; c < config.cols; ++c) {
    for (int r = 0; r + 1 < config.rows; ++r) {
      streets.push_back({at(r, c), at(r + 1, c), is_arterial_row(c)});
    }
  }
  for (int r = 0; r + 1 < config.rows; ++r) {
    for (int c = 0; c + 1 < config.cols; ++c) {
      if (rng.Uniform() < config.diagonal_prob) {
        // Randomly pick one of the two diagonals of the block.
        if (rng.Bernoulli(0.5)) {
          streets.push_back({at(r, c), at(r + 1, c + 1), false});
        } else {
          streets.push_back({at(r, c + 1), at(r + 1, c), false});
        }
      }
    }
  }

  for (const StreetSpec& st : streets) {
    if (rng.Uniform() < config.removal_prob) continue;
    const double speed =
        st.arterial ? config.arterial_speed_mps : config.local_speed_mps;
    const RoadClass rc =
        st.arterial ? RoadClass::kArterial : RoadClass::kLocal;
    const bool oneway = rng.Uniform() < config.oneway_prob;
    if (oneway) {
      // Random direction.
      if (rng.Bernoulli(0.5)) {
        net->AddSegment(st.a, st.b, speed, rc);
      } else {
        net->AddSegment(st.b, st.a, speed, rc);
      }
    } else {
      const SegmentId fwd = net->AddSegment(st.a, st.b, speed, rc);
      const SegmentId bwd = net->AddSegment(st.b, st.a, speed, rc);
      net->LinkReverse(fwd, bwd);
    }
  }

  net->Finalize();
  return net;
}

GridCityConfig ChengduMiniConfig() {
  GridCityConfig cfg;
  cfg.rows = 11;
  cfg.cols = 11;
  cfg.spacing_m = 350.0;
  cfg.jitter_m = 45.0;
  cfg.arterial_every = 4;
  cfg.diagonal_prob = 0.05;
  cfg.removal_prob = 0.04;
  cfg.oneway_prob = 0.04;
  cfg.seed = 20200401;
  return cfg;
}

GridCityConfig HarbinMiniConfig() {
  GridCityConfig cfg;
  cfg.rows = 14;
  cfg.cols = 15;
  cfg.spacing_m = 420.0;
  cfg.jitter_m = 80.0;
  cfg.arterial_every = 5;
  cfg.diagonal_prob = 0.10;
  cfg.removal_prob = 0.08;
  cfg.oneway_prob = 0.08;
  cfg.seed = 20200402;
  return cfg;
}

}  // namespace roadnet
}  // namespace deepst
