#include "roadnet/grid_city.h"

#include <cmath>
#include <vector>

namespace deepst {
namespace roadnet {
namespace {

struct StreetSpec {
  VertexId a;
  VertexId b;
  bool arterial;
};

}  // namespace

std::unique_ptr<RoadNetwork> BuildGridCity(const GridCityConfig& config) {
  DEEPST_CHECK_GE(config.rows, 2);
  DEEPST_CHECK_GE(config.cols, 2);
  util::Rng rng(config.seed);
  auto net = std::make_unique<RoadNetwork>();

  // Vertices on a jittered lattice.
  std::vector<VertexId> vid(static_cast<size_t>(config.rows) * config.cols);
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const double jx = rng.Gaussian(0.0, config.jitter_m);
      const double jy = rng.Gaussian(0.0, config.jitter_m);
      vid[static_cast<size_t>(r) * config.cols + c] = net->AddVertex(
          {c * config.spacing_m + jx, r * config.spacing_m + jy});
    }
  }
  auto at = [&](int r, int c) {
    return vid[static_cast<size_t>(r) * config.cols + c];
  };
  auto is_arterial_row = [&](int r) {
    return config.arterial_every > 0 && r % config.arterial_every == 0;
  };

  // Street specs: horizontal, vertical, optional diagonals.
  std::vector<StreetSpec> streets;
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c + 1 < config.cols; ++c) {
      streets.push_back({at(r, c), at(r, c + 1), is_arterial_row(r)});
    }
  }
  for (int c = 0; c < config.cols; ++c) {
    for (int r = 0; r + 1 < config.rows; ++r) {
      streets.push_back({at(r, c), at(r + 1, c), is_arterial_row(c)});
    }
  }
  for (int r = 0; r + 1 < config.rows; ++r) {
    for (int c = 0; c + 1 < config.cols; ++c) {
      if (rng.Uniform() < config.diagonal_prob) {
        // Randomly pick one of the two diagonals of the block.
        if (rng.Bernoulli(0.5)) {
          streets.push_back({at(r, c), at(r + 1, c + 1), false});
        } else {
          streets.push_back({at(r, c + 1), at(r + 1, c), false});
        }
      }
    }
  }

  for (const StreetSpec& st : streets) {
    if (rng.Uniform() < config.removal_prob) continue;
    const double speed =
        st.arterial ? config.arterial_speed_mps : config.local_speed_mps;
    const RoadClass rc =
        st.arterial ? RoadClass::kArterial : RoadClass::kLocal;
    const bool oneway = rng.Uniform() < config.oneway_prob;
    if (oneway) {
      // Random direction.
      if (rng.Bernoulli(0.5)) {
        net->AddSegment(st.a, st.b, speed, rc);
      } else {
        net->AddSegment(st.b, st.a, speed, rc);
      }
    } else {
      const SegmentId fwd = net->AddSegment(st.a, st.b, speed, rc);
      const SegmentId bwd = net->AddSegment(st.b, st.a, speed, rc);
      net->LinkReverse(fwd, bwd);
    }
  }

  net->Finalize();
  return net;
}

std::unique_ptr<RoadNetwork> BuildChengduFull(const ChengduFullConfig& config) {
  const GridCityConfig& g = config.base;
  DEEPST_CHECK_GE(g.rows, 8);
  DEEPST_CHECK_GE(g.cols, 8);
  DEEPST_CHECK_GE(config.bridge_every, 1);
  util::Rng rng(g.seed);
  auto net = std::make_unique<RoadNetwork>();

  const double width = (g.cols - 1) * g.spacing_m;
  const double height = (g.rows - 1) * g.spacing_m;
  const geo::Point center{width / 2.0, height / 2.0};

  std::vector<VertexId> vid(static_cast<size_t>(g.rows) * g.cols);
  std::vector<geo::Point> pos(vid.size());
  for (int r = 0; r < g.rows; ++r) {
    for (int c = 0; c < g.cols; ++c) {
      const double jx = rng.Gaussian(0.0, g.jitter_m);
      const double jy = rng.Gaussian(0.0, g.jitter_m);
      const geo::Point p{c * g.spacing_m + jx, r * g.spacing_m + jy};
      const size_t i = static_cast<size_t>(r) * g.cols + c;
      pos[i] = p;
      vid[i] = net->AddVertex(p);
    }
  }
  auto idx = [&](int r, int c) { return static_cast<size_t>(r) * g.cols + c; };

  // Ring radii: evenly spaced annuli out to just inside the lattice edge.
  const double r_max = 0.48 * std::min(width, height);
  std::vector<double> ring_r;
  for (int k = 0; k < config.num_rings; ++k) {
    ring_r.push_back((k + 1) * r_max / (config.num_rings + 1));
  }
  // Rivers: y_i(x) = base_i + A sin(2 pi x / lambda + phase_i), stacked
  // north to south.
  std::vector<double> river_base, river_phase;
  for (int i = 0; i < config.num_rivers; ++i) {
    river_base.push_back(height * (i + 1) / (config.num_rivers + 1));
    river_phase.push_back(i * 1.7);
  }
  auto river_y = [&](int i, double x) {
    return river_base[static_cast<size_t>(i)] +
           config.river_amplitude_m *
               std::sin(2.0 * M_PI * x / config.river_wavelength_m +
                        river_phase[static_cast<size_t>(i)]);
  };

  // Classifies the street (a, b) by the city's macro-structure. Order of
  // precedence: ring highway > radial arterial > arterial lattice row/col >
  // local.
  auto classify = [&](const geo::Point& a, const geo::Point& b,
                      bool lattice_arterial) {
    const geo::Point mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
    const double dx = b.x - a.x, dy = b.y - a.y;
    const double len = std::hypot(dx, dy);
    const double rx = mid.x - center.x, ry = mid.y - center.y;
    const double dist = std::hypot(rx, ry);
    if (len > 1e-9 && dist > 1e-9) {
      // Alignment of the street with the radial direction at its midpoint.
      const double along = (dx * rx + dy * ry) / (len * dist);
      for (double r : ring_r) {
        if (std::abs(dist - r) < 0.6 * g.spacing_m && std::abs(along) < 0.45) {
          return RoadClass::kHighway;  // tangential street on a ring annulus
        }
      }
      const double theta = std::atan2(ry, rx);
      for (int j = 0; j < config.num_radials; ++j) {
        const double phi = 2.0 * M_PI * j / config.num_radials;
        double dtheta = theta - phi;
        while (dtheta > M_PI) dtheta -= 2.0 * M_PI;
        while (dtheta < -M_PI) dtheta += 2.0 * M_PI;
        if (std::abs(dtheta) < M_PI / 2 &&
            dist * std::abs(std::sin(dtheta)) < 0.55 * g.spacing_m &&
            std::abs(along) > 0.8) {
          return RoadClass::kArterial;  // street along a radial corridor
        }
      }
    }
    return lattice_arterial ? RoadClass::kArterial : RoadClass::kLocal;
  };

  std::vector<int> bridge_counter(static_cast<size_t>(config.num_rivers), 0);
  auto add_street = [&](int ra, int ca, int rb, int cb,
                        bool lattice_arterial) {
    const geo::Point& a = pos[idx(ra, ca)];
    const geo::Point& b = pos[idx(rb, cb)];
    RoadClass rc = classify(a, b, lattice_arterial);
    // Rivers sever crossing streets; every bridge_every-th crossing per
    // river is kept as a highway bridge.
    for (int i = 0; i < config.num_rivers; ++i) {
      const bool a_north = a.y < river_y(i, a.x);
      const bool b_north = b.y < river_y(i, b.x);
      if (a_north != b_north) {
        if (++bridge_counter[static_cast<size_t>(i)] % config.bridge_every !=
            0) {
          return;  // severed by the river
        }
        rc = RoadClass::kHighway;
        break;
      }
    }
    if (rc == RoadClass::kLocal && rng.Uniform() < g.removal_prob) return;
    const double speed = rc == RoadClass::kHighway ? config.highway_speed_mps
                         : rc == RoadClass::kArterial ? g.arterial_speed_mps
                                                      : g.local_speed_mps;
    const VertexId va = vid[idx(ra, ca)];
    const VertexId vb = vid[idx(rb, cb)];
    if (rc == RoadClass::kLocal && rng.Uniform() < g.oneway_prob) {
      if (rng.Bernoulli(0.5)) {
        net->AddSegment(va, vb, speed, rc);
      } else {
        net->AddSegment(vb, va, speed, rc);
      }
      return;
    }
    const SegmentId fwd = net->AddSegment(va, vb, speed, rc);
    const SegmentId bwd = net->AddSegment(vb, va, speed, rc);
    net->LinkReverse(fwd, bwd);
  };

  auto lattice_arterial = [&](int line) {
    return g.arterial_every > 0 && line % g.arterial_every == 0;
  };
  for (int r = 0; r < g.rows; ++r) {
    for (int c = 0; c + 1 < g.cols; ++c) {
      add_street(r, c, r, c + 1, lattice_arterial(r));
    }
  }
  for (int c = 0; c < g.cols; ++c) {
    for (int r = 0; r + 1 < g.rows; ++r) {
      add_street(r, c, r + 1, c, lattice_arterial(c));
    }
  }
  for (int r = 0; r + 1 < g.rows; ++r) {
    for (int c = 0; c + 1 < g.cols; ++c) {
      if (rng.Uniform() < g.diagonal_prob) {
        if (rng.Bernoulli(0.5)) {
          add_street(r, c, r + 1, c + 1, false);
        } else {
          add_street(r, c + 1, r + 1, c, false);
        }
      }
    }
  }

  net->Finalize();
  return net;
}

ChengduFullConfig ChengduFullCityConfig() {
  ChengduFullConfig cfg;
  cfg.base.rows = 172;
  cfg.base.cols = 172;
  cfg.base.spacing_m = 150.0;
  cfg.base.jitter_m = 25.0;
  cfg.base.arterial_every = 8;
  cfg.base.diagonal_prob = 0.04;
  cfg.base.removal_prob = 0.05;
  cfg.base.oneway_prob = 0.06;
  cfg.base.seed = 20200403;
  return cfg;
}

GridCityConfig ChengduMiniConfig() {
  GridCityConfig cfg;
  cfg.rows = 11;
  cfg.cols = 11;
  cfg.spacing_m = 350.0;
  cfg.jitter_m = 45.0;
  cfg.arterial_every = 4;
  cfg.diagonal_prob = 0.05;
  cfg.removal_prob = 0.04;
  cfg.oneway_prob = 0.04;
  cfg.seed = 20200401;
  return cfg;
}

GridCityConfig HarbinMiniConfig() {
  GridCityConfig cfg;
  cfg.rows = 14;
  cfg.cols = 15;
  cfg.spacing_m = 420.0;
  cfg.jitter_m = 80.0;
  cfg.arterial_every = 5;
  cfg.diagonal_prob = 0.10;
  cfg.removal_prob = 0.08;
  cfg.oneway_prob = 0.08;
  cfg.seed = 20200402;
  return cfg;
}

}  // namespace roadnet
}  // namespace deepst
