#include "roadnet/io.h"

#include <cstdint>
#include <fstream>

namespace deepst {
namespace roadnet {
namespace {

constexpr uint32_t kMagic = 0x0AD2E701;
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

util::Status SaveRoadNetwork(const RoadNetwork& net, const std::string& path) {
  if (!net.finalized()) {
    return util::Status::FailedPrecondition("network not finalized");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(net.num_vertices()));
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    WritePod(out, net.vertex(v).pos.x);
    WritePod(out, net.vertex(v).pos.y);
  }
  WritePod(out, static_cast<uint32_t>(net.num_segments()));
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    const Segment& seg = net.segment(s);
    WritePod(out, seg.from);
    WritePod(out, seg.to);
    WritePod(out, seg.speed_limit_mps);
    WritePod(out, static_cast<uint8_t>(seg.road_class));
    WritePod(out, seg.reverse);
    WritePod(out, static_cast<uint32_t>(seg.polyline.size()));
    for (const geo::Point& p : seg.polyline) {
      WritePod(out, p.x);
      WritePod(out, p.y);
    }
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  if (!ReadPod(in, &version) || version != kVersion) {
    return util::Status::IoError("unsupported version in " + path);
  }
  auto net = std::make_unique<RoadNetwork>();
  uint32_t num_vertices = 0;
  if (!ReadPod(in, &num_vertices)) {
    return util::Status::IoError("truncated vertex count");
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    geo::Point p;
    if (!ReadPod(in, &p.x) || !ReadPod(in, &p.y)) {
      return util::Status::IoError("truncated vertex");
    }
    net->AddVertex(p);
  }
  uint32_t num_segments = 0;
  if (!ReadPod(in, &num_segments)) {
    return util::Status::IoError("truncated segment count");
  }
  std::vector<SegmentId> reverse_of(num_segments, kInvalidSegment);
  for (uint32_t s = 0; s < num_segments; ++s) {
    VertexId from = 0, to = 0;
    double speed = 0.0;
    uint8_t road_class = 0;
    SegmentId reverse = kInvalidSegment;
    uint32_t poly_len = 0;
    if (!ReadPod(in, &from) || !ReadPod(in, &to) || !ReadPod(in, &speed) ||
        !ReadPod(in, &road_class) || !ReadPod(in, &reverse) ||
        !ReadPod(in, &poly_len)) {
      return util::Status::IoError("truncated segment header");
    }
    if (poly_len < 2 || poly_len > 1u << 20) {
      return util::Status::IoError("implausible polyline length");
    }
    std::vector<geo::Point> polyline(poly_len);
    for (auto& p : polyline) {
      if (!ReadPod(in, &p.x) || !ReadPod(in, &p.y)) {
        return util::Status::IoError("truncated polyline");
      }
    }
    net->AddSegmentWithPolyline(from, to, std::move(polyline), speed,
                                static_cast<RoadClass>(road_class));
    reverse_of[s] = reverse;
  }
  for (uint32_t s = 0; s < num_segments; ++s) {
    const SegmentId r = reverse_of[s];
    if (r != kInvalidSegment && r > static_cast<SegmentId>(s)) {
      if (r >= static_cast<SegmentId>(num_segments)) {
        return util::Status::IoError("reverse link out of range");
      }
      net->LinkReverse(static_cast<SegmentId>(s), r);
    }
  }
  net->Finalize();
  return net;
}

}  // namespace roadnet
}  // namespace deepst
