#include "roadnet/io.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "geo/polyline.h"
#include "util/byte_reader.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/fixed_format.h"
#include "util/mapped_file.h"
#include "util/string_util.h"

namespace deepst {
namespace roadnet {
namespace {

constexpr uint32_t kMagic = 0x0AD2E701;
// v1: raw records. v2 appends a CRC32 footer over everything before it.
// v3: fixed-layout mmap-able sections (docs/formats.md). Load accepts all
// three (v1 files predate the checksum).
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;
constexpr uint32_t kVersionV3 = 3;
constexpr uint32_t kMaxPolylinePoints = 1u << 20;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Per-record minimum sizes used to reject element counts that cannot fit in
// the remaining bytes (bit-flipped counts must fail fast, not drive
// gigabyte allocations).
constexpr uint64_t kVertexBytes = 2 * sizeof(double);
constexpr uint64_t kSegmentHeaderBytes = 2 * sizeof(VertexId) +
                                         sizeof(double) + sizeof(uint8_t) +
                                         sizeof(SegmentId) + sizeof(uint32_t);
constexpr uint64_t kPointBytes = 2 * sizeof(double);

// -- Format v3 ---------------------------------------------------------------
//
// Fixed 48-byte header, then the section table, then 8-aligned payloads,
// then the CRC footer (util/fixed_format.h). Byte layout in docs/formats.md.
struct RoadnetHeaderV3 {
  uint32_t magic = kMagic;
  uint32_t version = kVersionV3;
  uint64_t num_vertices = 0;
  uint64_t num_segments = 0;
  uint64_t num_points = 0;
  uint32_t num_sections = 0;
  uint32_t flags = 0;  // bit 0: spatial-index sections present
  double spatial_cell_size_m = 0.0;
};
static_assert(sizeof(RoadnetHeaderV3) == 48);

constexpr uint32_t kFlagSpatialIndex = 1u;

// Section ids.
constexpr uint32_t kSecVertices = 1;
constexpr uint32_t kSecSegments = 2;
constexpr uint32_t kSecPoints = 3;
constexpr uint32_t kSecVoutOff = 4;
constexpr uint32_t kSecVoutIds = 5;
constexpr uint32_t kSecVinOff = 6;
constexpr uint32_t kSecVinIds = 7;
constexpr uint32_t kSecCellOff = 8;
constexpr uint32_t kSecCellIds = 9;

util::Status ParseNetwork(util::ByteReader* in, RoadNetwork* net) {
  uint32_t num_vertices = 0;
  if (!in->Read(&num_vertices)) {
    return util::Status::IoError("truncated vertex count");
  }
  if (!in->CanHold(num_vertices, kVertexBytes)) {
    return util::Status::IoError("vertex count exceeds file size");
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    geo::Point p;
    if (!in->Read(&p.x) || !in->Read(&p.y)) {
      return util::Status::IoError("truncated vertex");
    }
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return util::Status::InvalidArgument(
          util::StrFormat("non-finite vertex %u coordinate", v));
    }
    net->AddVertex(p);
  }
  uint32_t num_segments = 0;
  if (!in->Read(&num_segments)) {
    return util::Status::IoError("truncated segment count");
  }
  if (!in->CanHold(num_segments, kSegmentHeaderBytes)) {
    return util::Status::IoError("segment count exceeds file size");
  }
  std::vector<SegmentId> reverse_of(num_segments, kInvalidSegment);
  for (uint32_t s = 0; s < num_segments; ++s) {
    VertexId from = 0, to = 0;
    double speed = 0.0;
    uint8_t road_class = 0;
    SegmentId reverse = kInvalidSegment;
    uint32_t poly_len = 0;
    if (!in->Read(&from) || !in->Read(&to) || !in->Read(&speed) ||
        !in->Read(&road_class) || !in->Read(&reverse) ||
        !in->Read(&poly_len)) {
      return util::Status::IoError("truncated segment header");
    }
    // Referential and bounds validation up front: every construction call
    // below DEEPST_CHECKs its preconditions, so a malformed record must be
    // rejected here, before the abort sites are reachable.
    if (from < 0 || from >= net->num_vertices() || to < 0 ||
        to >= net->num_vertices()) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u endpoint out of range (%d -> %d, %d "
                          "vertices)",
                          s, from, to, net->num_vertices()));
    }
    if (!std::isfinite(speed) || speed <= 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u speed limit not positive", s));
    }
    if (road_class > static_cast<uint8_t>(RoadClass::kHighway)) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u unknown road class %u", s, road_class));
    }
    if (reverse != kInvalidSegment &&
        (reverse < 0 || static_cast<uint32_t>(reverse) >= num_segments)) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u reverse link out of range", s));
    }
    if (poly_len < 2 || poly_len > kMaxPolylinePoints ||
        !in->CanHold(poly_len, kPointBytes)) {
      return util::Status::IoError(
          util::StrFormat("segment %u implausible polyline length", s));
    }
    std::vector<geo::Point> polyline(poly_len);
    for (auto& p : polyline) {
      if (!in->Read(&p.x) || !in->Read(&p.y)) {
        return util::Status::IoError("truncated polyline");
      }
      if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
        return util::Status::InvalidArgument(
            util::StrFormat("segment %u non-finite polyline point", s));
      }
    }
    const double length_m = geo::PolylineLength(polyline);
    if (!(length_m > 0.0)) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u has zero-length polyline", s));
    }
    net->AddSegmentWithPolyline(from, to, std::move(polyline), speed,
                                static_cast<RoadClass>(road_class));
    reverse_of[s] = reverse;
  }
  for (uint32_t s = 0; s < num_segments; ++s) {
    const SegmentId r = reverse_of[s];
    if (r != kInvalidSegment && r > static_cast<SegmentId>(s)) {
      net->LinkReverse(static_cast<SegmentId>(s), r);
    }
  }
  net->Finalize();
  return util::Status::Ok();
}

// Alloc-free validation of mapped v3 sections: pure scans over the views.
// Everything a CHECK in the query path could trip on is rejected here.
// Same predicate as std::isfinite (IEEE-754 exponent bits not all ones) in a
// form the compiler can vectorize: the v3 load validates every coordinate of
// a mapped city, so these scans sit on the cold-load critical path
// (docs/formats.md).
inline bool IsFiniteBits(double d) {
  return (std::bit_cast<uint64_t>(d) & 0x7FF0000000000000ull) !=
         0x7FF0000000000000ull;
}

// True when all 2*n doubles starting at `xy` are finite.
bool AllFinite(const geo::Point* xy, uint64_t n) {
  const auto* p = reinterpret_cast<const double*>(xy);
  uint64_t bad = 0;
  for (uint64_t i = 0; i < 2 * n; ++i) {
    bad |= static_cast<uint64_t>(!IsFiniteBits(p[i]));
  }
  return bad == 0;
}

util::Status ValidateFlatNetwork(const RoadNetwork::FlatStorageRefs& r,
                                 const std::string& path) {
  const int64_t nv = static_cast<int64_t>(r.num_vertices);
  const int64_t ns = static_cast<int64_t>(r.num_segments);
  static_assert(sizeof(Vertex) == sizeof(geo::Point),
                "vertex scan reads vertices as bare points");
  if (!AllFinite(reinterpret_cast<const geo::Point*>(r.vertices),
                 r.num_vertices)) {
    return util::Status::InvalidArgument("non-finite vertex coordinate in " +
                                         path);
  }
  if (!AllFinite(r.points, r.num_points)) {
    return util::Status::InvalidArgument("non-finite polyline point in " +
                                         path);
  }
  for (uint64_t s = 0; s < r.num_segments; ++s) {
    const Segment& seg = r.segments[s];
    const auto fail = [&](const char* why) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %llu %s in %s",
                          static_cast<unsigned long long>(s), why,
                          path.c_str()));
    };
    if (seg.from < 0 || seg.from >= nv || seg.to < 0 || seg.to >= nv) {
      return fail("endpoint out of range");
    }
    if (!std::isfinite(seg.speed_limit_mps) || seg.speed_limit_mps <= 0.0) {
      return fail("speed limit not positive");
    }
    if (static_cast<uint8_t>(seg.road_class) >
        static_cast<uint8_t>(RoadClass::kHighway)) {
      return fail("unknown road class");
    }
    if (seg.reverse != kInvalidSegment &&
        (seg.reverse < 0 || seg.reverse >= ns ||
         r.segments[seg.reverse].reverse != static_cast<SegmentId>(s))) {
      return fail("reverse link out of range or asymmetric");
    }
    if (seg.poly_len < 2 || seg.poly_len > kMaxPolylinePoints ||
        seg.poly_start > r.num_points ||
        seg.poly_len > r.num_points - seg.poly_start) {
      return fail("polyline range out of bounds");
    }
    if (!std::isfinite(seg.length_m) || seg.length_m <= 0.0) {
      return fail("non-positive length");
    }
  }
  // CSR adjacency: offsets must be monotone and exhaustive, ids must be the
  // segments actually incident to the vertex, ascending (the slot order the
  // softmax head depends on).
  const auto check_csr = [&](const uint64_t* off, const SegmentId* ids,
                             bool out_dir) -> util::Status {
    if (off[0] != 0 || off[r.num_vertices] != r.num_segments) {
      return util::Status::InvalidArgument("adjacency offsets corrupt in " +
                                           path);
    }
    for (uint64_t v = 0; v < r.num_vertices; ++v) {
      if (off[v + 1] < off[v] || off[v + 1] > r.num_segments) {
        return util::Status::InvalidArgument("adjacency offsets corrupt in " +
                                             path);
      }
      for (uint64_t i = off[v]; i < off[v + 1]; ++i) {
        const SegmentId s = ids[i];
        if (s < 0 || s >= ns || (i > off[v] && ids[i - 1] >= s)) {
          return util::Status::InvalidArgument(
              "adjacency ids corrupt in " + path);
        }
        const VertexId anchor = out_dir ? r.segments[s].from : r.segments[s].to;
        if (anchor != static_cast<VertexId>(v)) {
          return util::Status::InvalidArgument(
              "adjacency ids corrupt in " + path);
        }
      }
    }
    return util::Status::Ok();
  };
  DEEPST_RETURN_IF_ERROR(check_csr(r.vout_off, r.vout_ids, true));
  DEEPST_RETURN_IF_ERROR(check_csr(r.vin_off, r.vin_ids, false));
  return util::Status::Ok();
}

// Parses and validates a mapped v3 image, populating `net` (zero-copy) and,
// when the file embeds a spatial CSR, handing its views back via the out
// params for LoadCity to adopt.
struct SpatialSections {
  bool present = false;
  double cell_size_m = 0.0;
  const uint64_t* cell_off = nullptr;
  const SegmentId* cell_ids = nullptr;
};

util::Status LoadV3(std::shared_ptr<util::MappedFile> file,
                    const std::string& path, RoadNetwork* net,
                    SpatialSections* spatial) {
  const char* data = file->data();
  const size_t size = file->size();
  DEEPST_RETURN_IF_ERROR(util::CheckCrcFooter(data, size, path));
  if (size < sizeof(RoadnetHeaderV3) + util::kFooterBytes) {
    return util::Status::IoError("file too short: " + path);
  }
  RoadnetHeaderV3 hdr;
  std::memcpy(&hdr, data, sizeof(hdr));
  // Counts are CRC-protected but still sanity-bounded: ids are int32 and
  // section byte maths must not overflow.
  constexpr uint64_t kMaxCount = 1ull << 31;
  if (hdr.num_vertices >= kMaxCount || hdr.num_segments >= kMaxCount ||
      hdr.num_points >= (1ull << 40)) {
    return util::Status::InvalidArgument("implausible element counts in " +
                                         path);
  }
  auto sections = util::SectionMap::Parse(data, size, sizeof(RoadnetHeaderV3),
                                          hdr.num_sections, path);
  DEEPST_RETURN_IF_ERROR(sections.status());
  const util::SectionMap& map = sections.value();

  RoadNetwork::FlatStorageRefs refs;
  refs.num_vertices = hdr.num_vertices;
  refs.num_segments = hdr.num_segments;
  refs.num_points = hdr.num_points;
  DEEPST_RETURN_IF_ERROR(
      map.View(kSecVertices, hdr.num_vertices, &refs.vertices));
  DEEPST_RETURN_IF_ERROR(
      map.View(kSecSegments, hdr.num_segments, &refs.segments));
  DEEPST_RETURN_IF_ERROR(map.View(kSecPoints, hdr.num_points, &refs.points));
  DEEPST_RETURN_IF_ERROR(
      map.View(kSecVoutOff, hdr.num_vertices + 1, &refs.vout_off));
  DEEPST_RETURN_IF_ERROR(
      map.View(kSecVoutIds, hdr.num_segments, &refs.vout_ids));
  DEEPST_RETURN_IF_ERROR(
      map.View(kSecVinOff, hdr.num_vertices + 1, &refs.vin_off));
  DEEPST_RETURN_IF_ERROR(
      map.View(kSecVinIds, hdr.num_segments, &refs.vin_ids));
  DEEPST_RETURN_IF_ERROR(ValidateFlatNetwork(refs, path));
  net->AdoptFlatStorage(refs, file);

  if ((hdr.flags & kFlagSpatialIndex) != 0) {
    if (!(hdr.spatial_cell_size_m > 0.0) ||
        !std::isfinite(hdr.spatial_cell_size_m)) {
      return util::Status::InvalidArgument("bad spatial cell size in " + path);
    }
    const geo::GridSpec grid(SpatialIndexPaddedBounds(*net),
                             hdr.spatial_cell_size_m);
    const uint64_t nc = static_cast<uint64_t>(grid.num_cells());
    const uint64_t* cell_off = nullptr;
    DEEPST_RETURN_IF_ERROR(map.View(kSecCellOff, nc + 1, &cell_off));
    if (cell_off[0] != 0) {
      return util::Status::InvalidArgument("spatial offsets corrupt in " +
                                           path);
    }
    for (uint64_t cell = 0; cell < nc; ++cell) {
      if (cell_off[cell + 1] < cell_off[cell]) {
        return util::Status::InvalidArgument("spatial offsets corrupt in " +
                                             path);
      }
    }
    const SegmentId* cell_ids = nullptr;
    DEEPST_RETURN_IF_ERROR(map.View(kSecCellIds, cell_off[nc], &cell_ids));
    for (uint64_t i = 0; i < cell_off[nc]; ++i) {
      if (cell_ids[i] < 0 ||
          cell_ids[i] >= static_cast<SegmentId>(hdr.num_segments)) {
        return util::Status::InvalidArgument("spatial ids corrupt in " + path);
      }
    }
    spatial->present = true;
    spatial->cell_size_m = hdr.spatial_cell_size_m;
    spatial->cell_off = cell_off;
    spatial->cell_ids = cell_ids;
  }
  return util::Status::Ok();
}

// Loads any version into `city->net`; for a v3 file with embedded spatial
// CSR, also fills `spatial` so the caller can adopt it (the mapping is kept
// alive by the network's backing).
util::Status LoadAnyVersion(const std::string& path, LoadedCity* city,
                            SpatialSections* spatial,
                            std::shared_ptr<util::MappedFile>* file_out) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("roadnet.load"));
  auto opened = util::MappedFile::Open(path);
  DEEPST_RETURN_IF_ERROR(opened.status());
  auto file =
      std::make_shared<util::MappedFile>(std::move(opened).value());
  const char* data = file->data();
  const size_t size = file->size();
  util::ByteReader reader(data, size);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  if (!reader.Read(&version)) {
    return util::Status::IoError("file too short: " + path);
  }
  city->net = std::make_unique<RoadNetwork>();
  if (version == kVersionV3) {
    DEEPST_RETURN_IF_ERROR(LoadV3(file, path, city->net.get(), spatial));
    *file_out = std::move(file);
    return util::Status::Ok();
  }
  if (version != kVersionLegacy && version != kVersion) {
    return util::Status::IoError("unsupported version in " + path);
  }
  size_t body = size;
  if (version == kVersion) {
    if (size < 3 * sizeof(uint32_t)) {
      return util::Status::IoError("file too short: " + path);
    }
    body = size - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data + body, sizeof(stored_crc));
    if (util::Crc32(data, body) != stored_crc) {
      return util::Status::DataLoss("road network CRC mismatch in " + path +
                                    " (corrupt or truncated)");
    }
  }
  util::ByteReader body_reader(data + 2 * sizeof(uint32_t),
                               body - 2 * sizeof(uint32_t));
  return ParseNetwork(&body_reader, city->net.get());
}

}  // namespace

util::Status SaveRoadNetwork(const RoadNetwork& net, const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("roadnet.save"));
  if (!net.finalized()) {
    return util::Status::FailedPrecondition("network not finalized");
  }
  std::ostringstream buf(std::ios::binary);
  WritePod(buf, kMagic);
  WritePod(buf, kVersion);
  WritePod(buf, static_cast<uint32_t>(net.num_vertices()));
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    WritePod(buf, net.vertex(v).pos.x);
    WritePod(buf, net.vertex(v).pos.y);
  }
  WritePod(buf, static_cast<uint32_t>(net.num_segments()));
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    const Segment& seg = net.segment(s);
    const geo::PointSpan poly = net.polyline(s);
    WritePod(buf, seg.from);
    WritePod(buf, seg.to);
    WritePod(buf, seg.speed_limit_mps);
    WritePod(buf, static_cast<uint8_t>(seg.road_class));
    WritePod(buf, seg.reverse);
    WritePod(buf, static_cast<uint32_t>(poly.size()));
    for (const geo::Point& p : poly) {
      WritePod(buf, p.x);
      WritePod(buf, p.y);
    }
  }
  std::string bytes = std::move(buf).str();
  const uint32_t crc = util::Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status SaveRoadNetworkV3(const RoadNetwork& net, const std::string& path,
                               const SpatialIndex* index) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("roadnet.save"));
  if (!net.finalized()) {
    return util::Status::FailedPrecondition("network not finalized");
  }
  RoadnetHeaderV3 hdr;
  hdr.num_vertices = net.vertices_span().size();
  hdr.num_segments = net.segments_span().size();
  hdr.num_points = net.points_span().size();
  hdr.num_sections = index != nullptr ? 9 : 7;
  if (index != nullptr) {
    hdr.flags |= kFlagSpatialIndex;
    hdr.spatial_cell_size_m = index->cell_size();
  }
  util::SectionWriter sections(sizeof(hdr), hdr.num_sections);
  sections.Add(kSecVertices, net.vertices_span().data(), hdr.num_vertices);
  sections.Add(kSecSegments, net.segments_span().data(), hdr.num_segments);
  sections.Add(kSecPoints, net.points_span().data(), hdr.num_points);
  sections.Add(kSecVoutOff, net.vout_offsets_span().data(),
               net.vout_offsets_span().size());
  sections.Add(kSecVoutIds, net.vout_ids_span().data(),
               net.vout_ids_span().size());
  sections.Add(kSecVinOff, net.vin_offsets_span().data(),
               net.vin_offsets_span().size());
  sections.Add(kSecVinIds, net.vin_ids_span().data(),
               net.vin_ids_span().size());
  if (index != nullptr) {
    sections.Add(kSecCellOff, index->cell_offsets_span().data(),
                 index->cell_offsets_span().size());
    sections.Add(kSecCellIds, index->cell_ids_span().data(),
                 index->cell_ids_span().size());
  }
  std::string bytes;
  util::AppendPod(&bytes, &hdr, 1);
  sections.AppendTo(&bytes);
  util::AppendCrcFooter(&bytes);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path) {
  LoadedCity city;
  SpatialSections spatial;
  std::shared_ptr<util::MappedFile> file;
  DEEPST_RETURN_IF_ERROR(LoadAnyVersion(path, &city, &spatial, &file));
  return std::move(city.net);
}

util::StatusOr<LoadedCity> LoadCity(const std::string& path,
                                    double cell_size_m) {
  LoadedCity city;
  SpatialSections spatial;
  std::shared_ptr<util::MappedFile> file;
  DEEPST_RETURN_IF_ERROR(LoadAnyVersion(path, &city, &spatial, &file));
  if (spatial.present && spatial.cell_size_m == cell_size_m) {
    city.index = std::make_unique<SpatialIndex>(
        *city.net, spatial.cell_size_m, spatial.cell_off, spatial.cell_ids,
        std::move(file));
  } else {
    city.index = std::make_unique<SpatialIndex>(*city.net, cell_size_m);
  }
  return city;
}

util::StatusOr<std::string> DescribeRoadNetworkFile(const std::string& path,
                                                    bool* healthy) {
  if (healthy != nullptr) *healthy = true;
  auto opened = util::MappedFile::Open(path);
  DEEPST_RETURN_IF_ERROR(opened.status());
  const util::MappedFile& file = std::move(opened).value();
  const char* data = file.data();
  const size_t size = file.size();
  uint32_t magic = 0, version = 0;
  util::ByteReader reader(data, size);
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::InvalidArgument("not a road-network file: " + path);
  }
  if (!reader.Read(&version)) {
    return util::Status::IoError("file too short: " + path);
  }
  std::string out = util::StrFormat(
      "road network  %s\n  format: v%u  size: %llu bytes\n", path.c_str(),
      version, static_cast<unsigned long long>(size));
  if (version == kVersionV3) {
    const util::Status crc = util::CheckCrcFooter(data, size, path);
    out += util::StrFormat("  crc: %s\n",
                           crc.ok() ? "ok" : crc.ToString().c_str());
    if (!crc.ok() && healthy != nullptr) *healthy = false;
    if (crc.ok() && size >= sizeof(RoadnetHeaderV3) + util::kFooterBytes) {
      RoadnetHeaderV3 hdr;
      std::memcpy(&hdr, data, sizeof(hdr));
      out += util::StrFormat(
          "  vertices: %llu  segments: %llu  polyline points: %llu\n",
          static_cast<unsigned long long>(hdr.num_vertices),
          static_cast<unsigned long long>(hdr.num_segments),
          static_cast<unsigned long long>(hdr.num_points));
      if ((hdr.flags & kFlagSpatialIndex) != 0) {
        out += util::StrFormat("  spatial index: embedded (cell %.0f m)\n",
                               hdr.spatial_cell_size_m);
      } else {
        out += "  spatial index: none (built on load)\n";
      }
      out += util::StrFormat(
          "  zero-copy: yes (%s this open)\n",
          file.is_mapped() ? "mmap'ed" : "buffered fallback");
    }
  } else if (version == kVersion || version == kVersionLegacy) {
    if (version == kVersion && size >= 3 * sizeof(uint32_t)) {
      const size_t body = size - sizeof(uint32_t);
      uint32_t stored_crc = 0;
      std::memcpy(&stored_crc, data + body, sizeof(stored_crc));
      const bool crc_ok = util::Crc32(data, body) == stored_crc;
      if (!crc_ok && healthy != nullptr) *healthy = false;
      out += util::StrFormat("  crc: %s\n", crc_ok ? "ok" : "MISMATCH");
    } else {
      out += "  crc: none (v1 predates the checksum)\n";
    }
    // Counts live inline in the stream: vertex count right after the
    // header, segment count after the fixed-size vertex records.
    uint32_t num_vertices = 0;
    if (reader.Read(&num_vertices) &&
        reader.Skip(num_vertices * kVertexBytes)) {
      uint32_t num_segments = 0;
      if (reader.Read(&num_segments)) {
        out += util::StrFormat("  vertices: %u  segments: %u\n", num_vertices,
                               num_segments);
      }
    }
    out += "  zero-copy: no (streaming format; convert to v3)\n";
  } else {
    if (healthy != nullptr) *healthy = false;
    out += "  unsupported version\n";
  }
  return out;
}

}  // namespace roadnet
}  // namespace deepst
