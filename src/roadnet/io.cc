#include "roadnet/io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "geo/polyline.h"
#include "util/byte_reader.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace deepst {
namespace roadnet {
namespace {

constexpr uint32_t kMagic = 0x0AD2E701;
// v1: raw records. v2 appends a CRC32 footer over everything before it;
// Load accepts both (v1 files predate the checksum).
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMaxPolylinePoints = 1u << 20;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Per-record minimum sizes used to reject element counts that cannot fit in
// the remaining bytes (bit-flipped counts must fail fast, not drive
// gigabyte allocations).
constexpr uint64_t kVertexBytes = 2 * sizeof(double);
constexpr uint64_t kSegmentHeaderBytes = 2 * sizeof(VertexId) +
                                         sizeof(double) + sizeof(uint8_t) +
                                         sizeof(SegmentId) + sizeof(uint32_t);
constexpr uint64_t kPointBytes = 2 * sizeof(double);

util::Status ParseNetwork(util::ByteReader* in, RoadNetwork* net) {
  uint32_t num_vertices = 0;
  if (!in->Read(&num_vertices)) {
    return util::Status::IoError("truncated vertex count");
  }
  if (!in->CanHold(num_vertices, kVertexBytes)) {
    return util::Status::IoError("vertex count exceeds file size");
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    geo::Point p;
    if (!in->Read(&p.x) || !in->Read(&p.y)) {
      return util::Status::IoError("truncated vertex");
    }
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return util::Status::InvalidArgument(
          util::StrFormat("non-finite vertex %u coordinate", v));
    }
    net->AddVertex(p);
  }
  uint32_t num_segments = 0;
  if (!in->Read(&num_segments)) {
    return util::Status::IoError("truncated segment count");
  }
  if (!in->CanHold(num_segments, kSegmentHeaderBytes)) {
    return util::Status::IoError("segment count exceeds file size");
  }
  std::vector<SegmentId> reverse_of(num_segments, kInvalidSegment);
  for (uint32_t s = 0; s < num_segments; ++s) {
    VertexId from = 0, to = 0;
    double speed = 0.0;
    uint8_t road_class = 0;
    SegmentId reverse = kInvalidSegment;
    uint32_t poly_len = 0;
    if (!in->Read(&from) || !in->Read(&to) || !in->Read(&speed) ||
        !in->Read(&road_class) || !in->Read(&reverse) ||
        !in->Read(&poly_len)) {
      return util::Status::IoError("truncated segment header");
    }
    // Referential and bounds validation up front: every construction call
    // below DEEPST_CHECKs its preconditions, so a malformed record must be
    // rejected here, before the abort sites are reachable.
    if (from < 0 || from >= net->num_vertices() || to < 0 ||
        to >= net->num_vertices()) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u endpoint out of range (%d -> %d, %d "
                          "vertices)",
                          s, from, to, net->num_vertices()));
    }
    if (!std::isfinite(speed) || speed <= 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u speed limit not positive", s));
    }
    if (road_class > static_cast<uint8_t>(RoadClass::kArterial)) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u unknown road class %u", s, road_class));
    }
    if (reverse != kInvalidSegment &&
        (reverse < 0 || static_cast<uint32_t>(reverse) >= num_segments)) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u reverse link out of range", s));
    }
    if (poly_len < 2 || poly_len > kMaxPolylinePoints ||
        !in->CanHold(poly_len, kPointBytes)) {
      return util::Status::IoError(
          util::StrFormat("segment %u implausible polyline length", s));
    }
    std::vector<geo::Point> polyline(poly_len);
    for (auto& p : polyline) {
      if (!in->Read(&p.x) || !in->Read(&p.y)) {
        return util::Status::IoError("truncated polyline");
      }
      if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
        return util::Status::InvalidArgument(
            util::StrFormat("segment %u non-finite polyline point", s));
      }
    }
    const double length_m = geo::PolylineLength(polyline);
    if (!(length_m > 0.0)) {
      return util::Status::InvalidArgument(
          util::StrFormat("segment %u has zero-length polyline", s));
    }
    net->AddSegmentWithPolyline(from, to, std::move(polyline), speed,
                                static_cast<RoadClass>(road_class));
    reverse_of[s] = reverse;
  }
  for (uint32_t s = 0; s < num_segments; ++s) {
    const SegmentId r = reverse_of[s];
    if (r != kInvalidSegment && r > static_cast<SegmentId>(s)) {
      net->LinkReverse(static_cast<SegmentId>(s), r);
    }
  }
  net->Finalize();
  return util::Status::Ok();
}

}  // namespace

util::Status SaveRoadNetwork(const RoadNetwork& net, const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("roadnet.save"));
  if (!net.finalized()) {
    return util::Status::FailedPrecondition("network not finalized");
  }
  std::ostringstream buf(std::ios::binary);
  WritePod(buf, kMagic);
  WritePod(buf, kVersion);
  WritePod(buf, static_cast<uint32_t>(net.num_vertices()));
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    WritePod(buf, net.vertex(v).pos.x);
    WritePod(buf, net.vertex(v).pos.y);
  }
  WritePod(buf, static_cast<uint32_t>(net.num_segments()));
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    const Segment& seg = net.segment(s);
    WritePod(buf, seg.from);
    WritePod(buf, seg.to);
    WritePod(buf, seg.speed_limit_mps);
    WritePod(buf, static_cast<uint8_t>(seg.road_class));
    WritePod(buf, seg.reverse);
    WritePod(buf, static_cast<uint32_t>(seg.polyline.size()));
    for (const geo::Point& p : seg.polyline) {
      WritePod(buf, p.x);
      WritePod(buf, p.y);
    }
  }
  std::string bytes = std::move(buf).str();
  const uint32_t crc = util::Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<RoadNetwork>> LoadRoadNetwork(
    const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("roadnet.load"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string bytes = std::move(raw).str();
  util::ByteReader reader(bytes);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  if (!reader.Read(&version) ||
      (version != kVersionLegacy && version != kVersion)) {
    return util::Status::IoError("unsupported version in " + path);
  }
  if (version == kVersion) {
    if (bytes.size() < 3 * sizeof(uint32_t)) {
      return util::Status::IoError("file too short: " + path);
    }
    const size_t body = bytes.size() - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + body, sizeof(stored_crc));
    if (util::Crc32(bytes.data(), body) != stored_crc) {
      return util::Status::DataLoss("road network CRC mismatch in " + path +
                                    " (corrupt or truncated)");
    }
    bytes.resize(body);
    reader = util::ByteReader(bytes);
    uint32_t skip = 0;
    (void)reader.Read(&skip);  // magic, re-verified above
    (void)reader.Read(&skip);  // version
  }
  auto net = std::make_unique<RoadNetwork>();
  util::Status parsed = ParseNetwork(&reader, net.get());
  if (!parsed.ok()) return parsed;
  return net;
}

}  // namespace roadnet
}  // namespace deepst
