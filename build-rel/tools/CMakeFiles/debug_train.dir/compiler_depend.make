# Empty compiler generated dependencies file for debug_train.
# This may be replaced when dependencies are built.
