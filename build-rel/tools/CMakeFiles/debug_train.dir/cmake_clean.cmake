file(REMOVE_RECURSE
  "CMakeFiles/debug_train.dir/debug_train.cc.o"
  "CMakeFiles/debug_train.dir/debug_train.cc.o.d"
  "debug_train"
  "debug_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
