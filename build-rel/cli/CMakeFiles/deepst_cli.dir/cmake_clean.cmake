file(REMOVE_RECURSE
  "CMakeFiles/deepst_cli.dir/deepst_cli.cc.o"
  "CMakeFiles/deepst_cli.dir/deepst_cli.cc.o.d"
  "deepst_cli"
  "deepst_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
