# Empty dependencies file for deepst_cli.
# This may be replaced when dependencies are built.
