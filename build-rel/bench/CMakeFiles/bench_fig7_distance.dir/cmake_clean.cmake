file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_distance.dir/bench_fig7_distance.cc.o"
  "CMakeFiles/bench_fig7_distance.dir/bench_fig7_distance.cc.o.d"
  "bench_fig7_distance"
  "bench_fig7_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
