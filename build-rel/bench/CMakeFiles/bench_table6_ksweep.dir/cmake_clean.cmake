file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ksweep.dir/bench_table6_ksweep.cc.o"
  "CMakeFiles/bench_table6_ksweep.dir/bench_table6_ksweep.cc.o.d"
  "bench_table6_ksweep"
  "bench_table6_ksweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ksweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
