# Empty dependencies file for bench_table6_ksweep.
# This may be replaced when dependencies are built.
