file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_recovery.dir/bench_table5_recovery.cc.o"
  "CMakeFiles/bench_table5_recovery.dir/bench_table5_recovery.cc.o.d"
  "bench_table5_recovery"
  "bench_table5_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
