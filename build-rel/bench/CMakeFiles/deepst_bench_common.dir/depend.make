# Empty dependencies file for deepst_bench_common.
# This may be replaced when dependencies are built.
