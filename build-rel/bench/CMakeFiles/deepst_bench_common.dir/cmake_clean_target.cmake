file(REMOVE_RECURSE
  "libdeepst_bench_common.a"
)
