file(REMOVE_RECURSE
  "CMakeFiles/deepst_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/deepst_bench_common.dir/bench_common.cc.o.d"
  "libdeepst_bench_common.a"
  "libdeepst_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
