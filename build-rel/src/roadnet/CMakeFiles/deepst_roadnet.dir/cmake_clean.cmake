file(REMOVE_RECURSE
  "CMakeFiles/deepst_roadnet.dir/grid_city.cc.o"
  "CMakeFiles/deepst_roadnet.dir/grid_city.cc.o.d"
  "CMakeFiles/deepst_roadnet.dir/io.cc.o"
  "CMakeFiles/deepst_roadnet.dir/io.cc.o.d"
  "CMakeFiles/deepst_roadnet.dir/road_network.cc.o"
  "CMakeFiles/deepst_roadnet.dir/road_network.cc.o.d"
  "CMakeFiles/deepst_roadnet.dir/shortest_path.cc.o"
  "CMakeFiles/deepst_roadnet.dir/shortest_path.cc.o.d"
  "CMakeFiles/deepst_roadnet.dir/spatial_index.cc.o"
  "CMakeFiles/deepst_roadnet.dir/spatial_index.cc.o.d"
  "libdeepst_roadnet.a"
  "libdeepst_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
