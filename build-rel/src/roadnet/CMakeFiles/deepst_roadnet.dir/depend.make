# Empty dependencies file for deepst_roadnet.
# This may be replaced when dependencies are built.
