
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/grid_city.cc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/grid_city.cc.o" "gcc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/grid_city.cc.o.d"
  "/root/repo/src/roadnet/io.cc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/io.cc.o" "gcc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/io.cc.o.d"
  "/root/repo/src/roadnet/road_network.cc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/road_network.cc.o" "gcc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/road_network.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/shortest_path.cc.o" "gcc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/shortest_path.cc.o.d"
  "/root/repo/src/roadnet/spatial_index.cc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/spatial_index.cc.o" "gcc" "src/roadnet/CMakeFiles/deepst_roadnet.dir/spatial_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/geo/CMakeFiles/deepst_geo.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/util/CMakeFiles/deepst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
