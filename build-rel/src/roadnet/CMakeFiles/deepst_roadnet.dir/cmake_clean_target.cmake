file(REMOVE_RECURSE
  "libdeepst_roadnet.a"
)
