file(REMOVE_RECURSE
  "libdeepst_eval.a"
)
