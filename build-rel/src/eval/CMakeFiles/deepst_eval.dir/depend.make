# Empty dependencies file for deepst_eval.
# This may be replaced when dependencies are built.
