file(REMOVE_RECURSE
  "CMakeFiles/deepst_eval.dir/metrics.cc.o"
  "CMakeFiles/deepst_eval.dir/metrics.cc.o.d"
  "CMakeFiles/deepst_eval.dir/world.cc.o"
  "CMakeFiles/deepst_eval.dir/world.cc.o.d"
  "libdeepst_eval.a"
  "libdeepst_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
