# Empty dependencies file for deepst_serve.
# This may be replaced when dependencies are built.
