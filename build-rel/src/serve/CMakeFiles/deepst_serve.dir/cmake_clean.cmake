file(REMOVE_RECURSE
  "CMakeFiles/deepst_serve.dir/metrics.cc.o"
  "CMakeFiles/deepst_serve.dir/metrics.cc.o.d"
  "CMakeFiles/deepst_serve.dir/server.cc.o"
  "CMakeFiles/deepst_serve.dir/server.cc.o.d"
  "libdeepst_serve.a"
  "libdeepst_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
