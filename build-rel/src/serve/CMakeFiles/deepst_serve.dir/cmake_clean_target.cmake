file(REMOVE_RECURSE
  "libdeepst_serve.a"
)
