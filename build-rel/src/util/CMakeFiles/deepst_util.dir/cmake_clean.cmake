file(REMOVE_RECURSE
  "CMakeFiles/deepst_util.dir/crc32.cc.o"
  "CMakeFiles/deepst_util.dir/crc32.cc.o.d"
  "CMakeFiles/deepst_util.dir/fault_injector.cc.o"
  "CMakeFiles/deepst_util.dir/fault_injector.cc.o.d"
  "CMakeFiles/deepst_util.dir/fixed_format.cc.o"
  "CMakeFiles/deepst_util.dir/fixed_format.cc.o.d"
  "CMakeFiles/deepst_util.dir/flags.cc.o"
  "CMakeFiles/deepst_util.dir/flags.cc.o.d"
  "CMakeFiles/deepst_util.dir/logging.cc.o"
  "CMakeFiles/deepst_util.dir/logging.cc.o.d"
  "CMakeFiles/deepst_util.dir/mapped_file.cc.o"
  "CMakeFiles/deepst_util.dir/mapped_file.cc.o.d"
  "CMakeFiles/deepst_util.dir/rng.cc.o"
  "CMakeFiles/deepst_util.dir/rng.cc.o.d"
  "CMakeFiles/deepst_util.dir/shutdown.cc.o"
  "CMakeFiles/deepst_util.dir/shutdown.cc.o.d"
  "CMakeFiles/deepst_util.dir/status.cc.o"
  "CMakeFiles/deepst_util.dir/status.cc.o.d"
  "CMakeFiles/deepst_util.dir/string_util.cc.o"
  "CMakeFiles/deepst_util.dir/string_util.cc.o.d"
  "CMakeFiles/deepst_util.dir/table.cc.o"
  "CMakeFiles/deepst_util.dir/table.cc.o.d"
  "CMakeFiles/deepst_util.dir/thread_pool.cc.o"
  "CMakeFiles/deepst_util.dir/thread_pool.cc.o.d"
  "libdeepst_util.a"
  "libdeepst_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
