# Empty dependencies file for deepst_util.
# This may be replaced when dependencies are built.
