file(REMOVE_RECURSE
  "libdeepst_util.a"
)
