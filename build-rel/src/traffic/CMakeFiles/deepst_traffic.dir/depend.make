# Empty dependencies file for deepst_traffic.
# This may be replaced when dependencies are built.
