file(REMOVE_RECURSE
  "libdeepst_traffic.a"
)
