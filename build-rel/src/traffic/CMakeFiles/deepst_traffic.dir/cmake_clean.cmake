file(REMOVE_RECURSE
  "CMakeFiles/deepst_traffic.dir/congestion_field.cc.o"
  "CMakeFiles/deepst_traffic.dir/congestion_field.cc.o.d"
  "CMakeFiles/deepst_traffic.dir/snapshot.cc.o"
  "CMakeFiles/deepst_traffic.dir/snapshot.cc.o.d"
  "libdeepst_traffic.a"
  "libdeepst_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
