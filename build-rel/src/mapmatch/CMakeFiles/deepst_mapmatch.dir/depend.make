# Empty dependencies file for deepst_mapmatch.
# This may be replaced when dependencies are built.
