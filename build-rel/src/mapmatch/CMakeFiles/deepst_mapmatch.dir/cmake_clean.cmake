file(REMOVE_RECURSE
  "CMakeFiles/deepst_mapmatch.dir/hmm_matcher.cc.o"
  "CMakeFiles/deepst_mapmatch.dir/hmm_matcher.cc.o.d"
  "libdeepst_mapmatch.a"
  "libdeepst_mapmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_mapmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
