file(REMOVE_RECURSE
  "libdeepst_mapmatch.a"
)
