# Empty dependencies file for deepst_geo.
# This may be replaced when dependencies are built.
