file(REMOVE_RECURSE
  "libdeepst_geo.a"
)
