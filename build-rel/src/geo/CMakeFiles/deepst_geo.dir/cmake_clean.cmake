file(REMOVE_RECURSE
  "CMakeFiles/deepst_geo.dir/grid.cc.o"
  "CMakeFiles/deepst_geo.dir/grid.cc.o.d"
  "CMakeFiles/deepst_geo.dir/latlng.cc.o"
  "CMakeFiles/deepst_geo.dir/latlng.cc.o.d"
  "CMakeFiles/deepst_geo.dir/polyline.cc.o"
  "CMakeFiles/deepst_geo.dir/polyline.cc.o.d"
  "CMakeFiles/deepst_geo.dir/tile_router.cc.o"
  "CMakeFiles/deepst_geo.dir/tile_router.cc.o.d"
  "libdeepst_geo.a"
  "libdeepst_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
