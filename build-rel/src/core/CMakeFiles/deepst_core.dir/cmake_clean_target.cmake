file(REMOVE_RECURSE
  "libdeepst_core.a"
)
