
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/deepst_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/deepst_model.cc" "src/core/CMakeFiles/deepst_core.dir/deepst_model.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/deepst_model.cc.o.d"
  "/root/repo/src/core/destination_proxy.cc" "src/core/CMakeFiles/deepst_core.dir/destination_proxy.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/destination_proxy.cc.o.d"
  "/root/repo/src/core/infer/session.cc" "src/core/CMakeFiles/deepst_core.dir/infer/session.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/infer/session.cc.o.d"
  "/root/repo/src/core/route_ranking.cc" "src/core/CMakeFiles/deepst_core.dir/route_ranking.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/route_ranking.cc.o.d"
  "/root/repo/src/core/serving.cc" "src/core/CMakeFiles/deepst_core.dir/serving.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/serving.cc.o.d"
  "/root/repo/src/core/traffic_encoder.cc" "src/core/CMakeFiles/deepst_core.dir/traffic_encoder.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/traffic_encoder.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/deepst_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/deepst_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/traj/CMakeFiles/deepst_traj.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/traffic/CMakeFiles/deepst_traffic.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/roadnet/CMakeFiles/deepst_roadnet.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/geo/CMakeFiles/deepst_geo.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/nn/CMakeFiles/deepst_nn.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/util/CMakeFiles/deepst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
