# Empty dependencies file for deepst_core.
# This may be replaced when dependencies are built.
