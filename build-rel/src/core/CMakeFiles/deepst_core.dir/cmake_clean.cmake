file(REMOVE_RECURSE
  "CMakeFiles/deepst_core.dir/checkpoint.cc.o"
  "CMakeFiles/deepst_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/deepst_core.dir/deepst_model.cc.o"
  "CMakeFiles/deepst_core.dir/deepst_model.cc.o.d"
  "CMakeFiles/deepst_core.dir/destination_proxy.cc.o"
  "CMakeFiles/deepst_core.dir/destination_proxy.cc.o.d"
  "CMakeFiles/deepst_core.dir/infer/session.cc.o"
  "CMakeFiles/deepst_core.dir/infer/session.cc.o.d"
  "CMakeFiles/deepst_core.dir/route_ranking.cc.o"
  "CMakeFiles/deepst_core.dir/route_ranking.cc.o.d"
  "CMakeFiles/deepst_core.dir/serving.cc.o"
  "CMakeFiles/deepst_core.dir/serving.cc.o.d"
  "CMakeFiles/deepst_core.dir/traffic_encoder.cc.o"
  "CMakeFiles/deepst_core.dir/traffic_encoder.cc.o.d"
  "CMakeFiles/deepst_core.dir/trainer.cc.o"
  "CMakeFiles/deepst_core.dir/trainer.cc.o.d"
  "libdeepst_core.a"
  "libdeepst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
