file(REMOVE_RECURSE
  "CMakeFiles/deepst_nn.dir/arena.cc.o"
  "CMakeFiles/deepst_nn.dir/arena.cc.o.d"
  "CMakeFiles/deepst_nn.dir/backend.cc.o"
  "CMakeFiles/deepst_nn.dir/backend.cc.o.d"
  "CMakeFiles/deepst_nn.dir/conv_layers.cc.o"
  "CMakeFiles/deepst_nn.dir/conv_layers.cc.o.d"
  "CMakeFiles/deepst_nn.dir/conv_ops.cc.o"
  "CMakeFiles/deepst_nn.dir/conv_ops.cc.o.d"
  "CMakeFiles/deepst_nn.dir/infer/forward.cc.o"
  "CMakeFiles/deepst_nn.dir/infer/forward.cc.o.d"
  "CMakeFiles/deepst_nn.dir/infer/memo.cc.o"
  "CMakeFiles/deepst_nn.dir/infer/memo.cc.o.d"
  "CMakeFiles/deepst_nn.dir/kernels.cc.o"
  "CMakeFiles/deepst_nn.dir/kernels.cc.o.d"
  "CMakeFiles/deepst_nn.dir/layers.cc.o"
  "CMakeFiles/deepst_nn.dir/layers.cc.o.d"
  "CMakeFiles/deepst_nn.dir/ops.cc.o"
  "CMakeFiles/deepst_nn.dir/ops.cc.o.d"
  "CMakeFiles/deepst_nn.dir/optimizer.cc.o"
  "CMakeFiles/deepst_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/deepst_nn.dir/serialize.cc.o"
  "CMakeFiles/deepst_nn.dir/serialize.cc.o.d"
  "CMakeFiles/deepst_nn.dir/tensor.cc.o"
  "CMakeFiles/deepst_nn.dir/tensor.cc.o.d"
  "CMakeFiles/deepst_nn.dir/variable.cc.o"
  "CMakeFiles/deepst_nn.dir/variable.cc.o.d"
  "libdeepst_nn.a"
  "libdeepst_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
