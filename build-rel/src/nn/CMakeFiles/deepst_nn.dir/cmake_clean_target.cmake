file(REMOVE_RECURSE
  "libdeepst_nn.a"
)
