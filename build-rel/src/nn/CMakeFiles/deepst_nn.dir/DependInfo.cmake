
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/arena.cc" "src/nn/CMakeFiles/deepst_nn.dir/arena.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/arena.cc.o.d"
  "/root/repo/src/nn/backend.cc" "src/nn/CMakeFiles/deepst_nn.dir/backend.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/backend.cc.o.d"
  "/root/repo/src/nn/conv_layers.cc" "src/nn/CMakeFiles/deepst_nn.dir/conv_layers.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/conv_layers.cc.o.d"
  "/root/repo/src/nn/conv_ops.cc" "src/nn/CMakeFiles/deepst_nn.dir/conv_ops.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/conv_ops.cc.o.d"
  "/root/repo/src/nn/infer/forward.cc" "src/nn/CMakeFiles/deepst_nn.dir/infer/forward.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/infer/forward.cc.o.d"
  "/root/repo/src/nn/infer/memo.cc" "src/nn/CMakeFiles/deepst_nn.dir/infer/memo.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/infer/memo.cc.o.d"
  "/root/repo/src/nn/kernels.cc" "src/nn/CMakeFiles/deepst_nn.dir/kernels.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/kernels.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/deepst_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/deepst_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/deepst_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/deepst_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/deepst_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/tensor.cc.o.d"
  "/root/repo/src/nn/variable.cc" "src/nn/CMakeFiles/deepst_nn.dir/variable.cc.o" "gcc" "src/nn/CMakeFiles/deepst_nn.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/util/CMakeFiles/deepst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
