# Empty dependencies file for deepst_nn.
# This may be replaced when dependencies are built.
