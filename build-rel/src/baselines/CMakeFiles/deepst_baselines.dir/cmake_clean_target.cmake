file(REMOVE_RECURSE
  "libdeepst_baselines.a"
)
