# Empty dependencies file for deepst_baselines.
# This may be replaced when dependencies are built.
