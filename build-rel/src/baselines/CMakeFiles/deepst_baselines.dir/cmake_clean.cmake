file(REMOVE_RECURSE
  "CMakeFiles/deepst_baselines.dir/markov2.cc.o"
  "CMakeFiles/deepst_baselines.dir/markov2.cc.o.d"
  "CMakeFiles/deepst_baselines.dir/mmi.cc.o"
  "CMakeFiles/deepst_baselines.dir/mmi.cc.o.d"
  "CMakeFiles/deepst_baselines.dir/neural_router.cc.o"
  "CMakeFiles/deepst_baselines.dir/neural_router.cc.o.d"
  "CMakeFiles/deepst_baselines.dir/wsp.cc.o"
  "CMakeFiles/deepst_baselines.dir/wsp.cc.o.d"
  "libdeepst_baselines.a"
  "libdeepst_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
