file(REMOVE_RECURSE
  "libdeepst_traj.a"
)
