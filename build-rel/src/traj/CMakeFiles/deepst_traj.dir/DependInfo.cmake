
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/ascii_map.cc" "src/traj/CMakeFiles/deepst_traj.dir/ascii_map.cc.o" "gcc" "src/traj/CMakeFiles/deepst_traj.dir/ascii_map.cc.o.d"
  "/root/repo/src/traj/dataset.cc" "src/traj/CMakeFiles/deepst_traj.dir/dataset.cc.o" "gcc" "src/traj/CMakeFiles/deepst_traj.dir/dataset.cc.o.d"
  "/root/repo/src/traj/generator.cc" "src/traj/CMakeFiles/deepst_traj.dir/generator.cc.o" "gcc" "src/traj/CMakeFiles/deepst_traj.dir/generator.cc.o.d"
  "/root/repo/src/traj/io.cc" "src/traj/CMakeFiles/deepst_traj.dir/io.cc.o" "gcc" "src/traj/CMakeFiles/deepst_traj.dir/io.cc.o.d"
  "/root/repo/src/traj/segment_stats.cc" "src/traj/CMakeFiles/deepst_traj.dir/segment_stats.cc.o" "gcc" "src/traj/CMakeFiles/deepst_traj.dir/segment_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/traffic/CMakeFiles/deepst_traffic.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/roadnet/CMakeFiles/deepst_roadnet.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/geo/CMakeFiles/deepst_geo.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/util/CMakeFiles/deepst_util.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/nn/CMakeFiles/deepst_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
