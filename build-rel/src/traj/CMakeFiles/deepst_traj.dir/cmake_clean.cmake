file(REMOVE_RECURSE
  "CMakeFiles/deepst_traj.dir/ascii_map.cc.o"
  "CMakeFiles/deepst_traj.dir/ascii_map.cc.o.d"
  "CMakeFiles/deepst_traj.dir/dataset.cc.o"
  "CMakeFiles/deepst_traj.dir/dataset.cc.o.d"
  "CMakeFiles/deepst_traj.dir/generator.cc.o"
  "CMakeFiles/deepst_traj.dir/generator.cc.o.d"
  "CMakeFiles/deepst_traj.dir/io.cc.o"
  "CMakeFiles/deepst_traj.dir/io.cc.o.d"
  "CMakeFiles/deepst_traj.dir/segment_stats.cc.o"
  "CMakeFiles/deepst_traj.dir/segment_stats.cc.o.d"
  "libdeepst_traj.a"
  "libdeepst_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
