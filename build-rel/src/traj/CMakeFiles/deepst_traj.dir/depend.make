# Empty dependencies file for deepst_traj.
# This may be replaced when dependencies are built.
