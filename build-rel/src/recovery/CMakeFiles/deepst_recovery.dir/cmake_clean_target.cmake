file(REMOVE_RECURSE
  "libdeepst_recovery.a"
)
