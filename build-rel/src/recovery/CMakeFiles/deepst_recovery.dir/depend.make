# Empty dependencies file for deepst_recovery.
# This may be replaced when dependencies are built.
