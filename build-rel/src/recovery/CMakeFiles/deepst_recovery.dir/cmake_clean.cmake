file(REMOVE_RECURSE
  "CMakeFiles/deepst_recovery.dir/strs.cc.o"
  "CMakeFiles/deepst_recovery.dir/strs.cc.o.d"
  "libdeepst_recovery.a"
  "libdeepst_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
