# Empty compiler generated dependencies file for train_sharded_test.
# This may be replaced when dependencies are built.
