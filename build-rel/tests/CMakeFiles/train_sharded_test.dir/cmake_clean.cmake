file(REMOVE_RECURSE
  "CMakeFiles/train_sharded_test.dir/train_sharded_test.cc.o"
  "CMakeFiles/train_sharded_test.dir/train_sharded_test.cc.o.d"
  "train_sharded_test"
  "train_sharded_test.pdb"
  "train_sharded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_sharded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
