file(REMOVE_RECURSE
  "CMakeFiles/deepst_model_test.dir/deepst_model_test.cc.o"
  "CMakeFiles/deepst_model_test.dir/deepst_model_test.cc.o.d"
  "deepst_model_test"
  "deepst_model_test.pdb"
  "deepst_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepst_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
