# Empty dependencies file for deepst_model_test.
# This may be replaced when dependencies are built.
