
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/traj_test.cc" "tests/CMakeFiles/traj_test.dir/traj_test.cc.o" "gcc" "tests/CMakeFiles/traj_test.dir/traj_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/eval/CMakeFiles/deepst_eval.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/recovery/CMakeFiles/deepst_recovery.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/baselines/CMakeFiles/deepst_baselines.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/serve/CMakeFiles/deepst_serve.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/core/CMakeFiles/deepst_core.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/mapmatch/CMakeFiles/deepst_mapmatch.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/traj/CMakeFiles/deepst_traj.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/traffic/CMakeFiles/deepst_traffic.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/roadnet/CMakeFiles/deepst_roadnet.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/geo/CMakeFiles/deepst_geo.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/nn/CMakeFiles/deepst_nn.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/util/CMakeFiles/deepst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
