file(REMOVE_RECURSE
  "CMakeFiles/format_v3_test.dir/format_v3_test.cc.o"
  "CMakeFiles/format_v3_test.dir/format_v3_test.cc.o.d"
  "format_v3_test"
  "format_v3_test.pdb"
  "format_v3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_v3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
