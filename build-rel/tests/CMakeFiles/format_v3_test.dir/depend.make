# Empty dependencies file for format_v3_test.
# This may be replaced when dependencies are built.
