file(REMOVE_RECURSE
  "CMakeFiles/traffic_aware_routing.dir/traffic_aware_routing.cpp.o"
  "CMakeFiles/traffic_aware_routing.dir/traffic_aware_routing.cpp.o.d"
  "traffic_aware_routing"
  "traffic_aware_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_aware_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
