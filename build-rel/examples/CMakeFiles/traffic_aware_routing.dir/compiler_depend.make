# Empty compiler generated dependencies file for traffic_aware_routing.
# This may be replaced when dependencies are built.
