# Empty compiler generated dependencies file for destination_proxies.
# This may be replaced when dependencies are built.
