file(REMOVE_RECURSE
  "CMakeFiles/destination_proxies.dir/destination_proxies.cpp.o"
  "CMakeFiles/destination_proxies.dir/destination_proxies.cpp.o.d"
  "destination_proxies"
  "destination_proxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/destination_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
