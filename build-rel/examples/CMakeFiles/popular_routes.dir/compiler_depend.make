# Empty compiler generated dependencies file for popular_routes.
# This may be replaced when dependencies are built.
