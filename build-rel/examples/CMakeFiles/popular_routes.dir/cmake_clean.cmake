file(REMOVE_RECURSE
  "CMakeFiles/popular_routes.dir/popular_routes.cpp.o"
  "CMakeFiles/popular_routes.dir/popular_routes.cpp.o.d"
  "popular_routes"
  "popular_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popular_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
