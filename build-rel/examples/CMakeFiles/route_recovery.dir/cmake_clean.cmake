file(REMOVE_RECURSE
  "CMakeFiles/route_recovery.dir/route_recovery.cpp.o"
  "CMakeFiles/route_recovery.dir/route_recovery.cpp.o.d"
  "route_recovery"
  "route_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
