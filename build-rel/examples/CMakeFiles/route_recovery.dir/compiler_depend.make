# Empty compiler generated dependencies file for route_recovery.
# This may be replaced when dependencies are built.
