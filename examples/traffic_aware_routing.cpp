// Real-time-traffic awareness demo: the same origin/destination query posed
// under the traffic conditions of different days (the synthetic hotspots
// drift and re-scale daily). DeepST conditions on the observed traffic
// tensor, so its predicted route and route likelihoods can change with
// traffic, unlike the traffic-blind DeepST-C.
#include <cstdio>

#include "baselines/neural_router.h"
#include "eval/world.h"

using namespace deepst;

int main() {
  eval::WorldConfig config = eval::ChengduMiniWorld(/*scale=*/0.5);
  config.generator.num_days = 10;
  config.train_days = 8;
  config.val_days = 1;
  eval::World world(config);

  core::TrainerConfig trainer_config = eval::DefaultTrainerConfig();
  trainer_config.max_epochs = 12;
  auto deepst = eval::TrainModel(
      &world, baselines::DeepStConfigOf(eval::DefaultModelConfig(world)),
      trainer_config);

  // A fixed OD pair from the test split.
  const traj::TripRecord* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  util::Rng rng(5);

  std::printf("origin %d -> rough destination (%.0f, %.0f)\n", query.origin,
              query.destination.x, query.destination.y);

  // Pose the same query at 8am on several days; traffic tensors differ.
  traj::Route previous;
  for (int day = config.train_days; day < config.generator.num_days; ++day) {
    query.start_time_s = day * traffic::kSecondsPerDay + 8.0 * 3600;
    traj::Route route = deepst->PredictRoute(query, &rng);
    core::PredictionContext ctx = deepst->MakeContext(query, &rng);
    std::printf("day %d, 8am: %2zu segments, log-lik of own route %.2f",
                day, route.size(), deepst->ScoreRoute(ctx, route));
    if (!previous.empty()) {
      std::printf("  (%s previous day's choice)",
                  route == previous ? "same as" : "differs from");
    }
    std::printf("\n   route:");
    for (auto s : route) std::printf(" %d", s);
    std::printf("\n");
    previous = route;
  }

  // Off-peak vs rush hour on the same day.
  query.start_time_s =
      config.train_days * traffic::kSecondsPerDay + 3.0 * 3600;
  traj::Route night = deepst->PredictRoute(query, &rng);
  std::printf("same day, 3am (free flow): %zu segments\n", night.size());
  return 0;
}
