// Route recovery from sparse trajectories (paper Section V-C): downsample a
// dense GPS trace to one point every few minutes, then reconstruct the
// underlying route with STRS (Markov spatial prior) and STRS+ (DeepST
// spatial prior), comparing both against the ground truth.
#include <cstdio>

#include "baselines/neural_router.h"
#include "eval/world.h"
#include "recovery/strs.h"

using namespace deepst;

namespace {

void PrintRoute(const char* label, const traj::Route& route) {
  std::printf("%s (%2zu segs):", label, route.size());
  for (auto s : route) std::printf(" %d", s);
  std::printf("\n");
}

}  // namespace

int main() {
  eval::WorldConfig config = eval::ChengduMiniWorld(/*scale=*/0.5);
  config.generator.num_days = 8;
  config.train_days = 6;
  config.val_days = 1;
  eval::World world(config);

  // STRS+ needs a trained DeepST for its spatial module; a short training
  // run is enough for the demo.
  core::TrainerConfig trainer_config = eval::DefaultTrainerConfig();
  trainer_config.max_epochs = 10;
  auto deepst = eval::TrainModel(
      &world, baselines::DeepStConfigOf(eval::DefaultModelConfig(world)),
      trainer_config);

  baselines::MarkovRouter mmi(world.net(), core::DeepSTConfig{});
  mmi.Train(world.split().train);

  recovery::MarkovSpatialScorer markov_scorer(&mmi);
  recovery::DeepStSpatialScorer deepst_scorer(deepst.get());
  recovery::StrsRecovery strs(world.net(), world.index(),
                              world.segment_stats(), &markov_scorer);
  recovery::StrsRecovery strs_plus(world.net(), world.index(),
                                   world.segment_stats(), &deepst_scorer);

  util::Rng rng(99);
  int shown = 0;
  for (const auto* rec : world.split().test) {
    if (shown >= 3) break;
    if (rec->trip.route.size() < 8) continue;
    // Keep roughly one GPS point every 4 minutes.
    traj::GpsTrajectory sparse = traj::DownsampleByInterval(rec->gps, 240.0);
    if (sparse.size() < 3) continue;
    ++shown;
    std::printf("\n--- trip with %zu GPS points, downsampled to %zu ---\n",
                rec->gps.size(), sparse.size());
    PrintRoute("ground truth", rec->trip.route);
    auto r1 = strs.RecoverTrajectory(sparse, rec->trip.destination,
                                     rec->trip.start_time_s, &rng);
    auto r2 = strs_plus.RecoverTrajectory(sparse, rec->trip.destination,
                                          rec->trip.start_time_s, &rng);
    if (r1.ok()) {
      PrintRoute("STRS        ", r1.value());
      std::printf("  STRS  accuracy: %.3f\n",
                  eval::Accuracy(rec->trip.route, r1.value()));
    } else {
      std::printf("STRS failed: %s\n", r1.status().ToString().c_str());
    }
    if (r2.ok()) {
      PrintRoute("STRS+       ", r2.value());
      std::printf("  STRS+ accuracy: %.3f\n",
                  eval::Accuracy(rec->trip.route, r2.value()));
    } else {
      std::printf("STRS+ failed: %s\n", r2.status().ToString().c_str());
    }
  }
  return 0;
}
