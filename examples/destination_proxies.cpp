// K-destination-proxies demo (paper Section IV-C): after training, the
// adjoint generative model's proxy means M should cover the destination
// distribution -- in our synthetic city, the popular hubs. This example
// prints the learned proxy centers next to the true hub centers and shows
// how nearby destinations share a proxy while distant ones do not.
#include <algorithm>
#include <cstdio>

#include "baselines/neural_router.h"
#include "eval/world.h"
#include "traj/generator.h"

using namespace deepst;

int main() {
  eval::WorldConfig config = eval::ChengduMiniWorld(/*scale=*/0.5);
  config.generator.num_days = 8;
  config.train_days = 6;
  config.val_days = 1;
  eval::World world(config);

  core::DeepSTConfig model_config =
      baselines::DeepStCConfigOf(eval::DefaultModelConfig(world));
  model_config.num_proxies = 24;
  core::TrainerConfig trainer_config = eval::DefaultTrainerConfig();
  trainer_config.max_epochs = 12;
  auto model = eval::TrainModel(&world, model_config, trainer_config);
  core::DestinationProxyModel* proxy = model->proxy_model();

  // Rebuild the generator's hubs for comparison (same config -> same hubs).
  traj::TripGenerator generator(world.net(), world.field(),
                                world.config().generator);

  std::printf("true destination hubs:\n");
  for (const auto& hub : generator.hub_centers()) {
    std::printf("  (%6.0f, %6.0f)\n", hub.x, hub.y);
  }

  std::printf("\nlearned proxy centers (distance to nearest hub):\n");
  for (const auto& center : proxy->ProxyCentersWorld()) {
    double nearest = 1e18;
    for (const auto& hub : generator.hub_centers()) {
      nearest = std::min(nearest, center.DistanceTo(hub));
    }
    std::printf("  (%6.0f, %6.0f)  %5.0f m\n", center.x, center.y, nearest);
  }

  // Nearby destinations share statistical strength through a common proxy.
  const geo::Point hub = generator.hub_centers().front();
  const geo::Point near_a = hub + geo::Point{60, 40};
  const geo::Point near_b = hub + geo::Point{-80, 30};
  const geo::Point far_away = hub + geo::Point{2500, 2000};
  std::printf("\nproxy allocation (posterior mode of q(pi|x)):\n");
  std::printf("  hub + (60,40)    -> proxy %d\n", proxy->AllocateProxy(near_a));
  std::printf("  hub + (-80,30)   -> proxy %d\n", proxy->AllocateProxy(near_b));
  std::printf("  hub + (2500,2000)-> proxy %d\n",
              proxy->AllocateProxy(far_away));
  return 0;
}
