// Quickstart: build a synthetic city, generate taxi trips, train a small
// DeepST, and predict the most likely route for an unseen trip.
//
//   $ ./quickstart
//
// Runs in under a minute on a laptop core.
#include <cstdio>

#include "baselines/neural_router.h"
#include "eval/world.h"
#include "util/logging.h"

using namespace deepst;

int main() {
  // 1. A city, its traffic, and a multi-day trip dataset (the substitute for
  //    the paper's DiDi/Harbin data; see DESIGN.md).
  eval::WorldConfig config = eval::ChengduMiniWorld(/*scale=*/0.5);
  config.generator.num_days = 8;
  config.train_days = 6;
  config.val_days = 1;
  eval::World world(config);
  std::printf("city: %d road segments, %zu trips generated\n",
              world.net().num_segments(), world.records().size());

  // 2. Train DeepST (full model: K-destination proxies + traffic VAE).
  core::DeepSTConfig model_config =
      baselines::DeepStConfigOf(eval::DefaultModelConfig(world));
  core::TrainerConfig trainer_config = eval::DefaultTrainerConfig();
  trainer_config.max_epochs = 10;
  trainer_config.verbose = true;
  core::TrainResult train_result;
  auto model =
      eval::TrainModel(&world, model_config, trainer_config, &train_result);
  std::printf("trained %lld parameters in %.1fs\n",
              static_cast<long long>(model->NumParams()),
              train_result.total_seconds);

  // 3. Predict the route of a held-out trip: the query carries only the
  //    initial road segment, the rough destination coordinate, and the
  //    start time (for the real-time traffic tensor).
  const traj::TripRecord* test_trip = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(test_trip->trip);
  util::Rng rng(7);
  traj::Route predicted = model->PredictRoute(query, &rng);

  std::printf("\norigin segment: %d, rough destination: (%.0f, %.0f) m\n",
              query.origin, query.destination.x, query.destination.y);
  std::printf("true route     (%2zu segs):", test_trip->trip.route.size());
  for (auto s : test_trip->trip.route) std::printf(" %d", s);
  std::printf("\npredicted route(%2zu segs):", predicted.size());
  for (auto s : predicted) std::printf(" %d", s);

  // 4. Score the likelihood of both routes under the model (Section IV-E).
  core::PredictionContext ctx = model->MakeContext(query, &rng);
  std::printf("\nlog-likelihood: true route %.2f, predicted route %.2f\n",
              model->ScoreRoute(ctx, test_trip->trip.route),
              model->ScoreRoute(ctx, predicted));
  return 0;
}
