// Popular-routes discovery (one of the paper's motivating downstream tasks):
// enumerate candidate routes between an origin/destination pair, score each
// with DeepST's route likelihood, and render the top choices on an ASCII
// map. The probability column is normalized over the candidate set.
#include <cstdio>

#include "baselines/neural_router.h"
#include "core/route_ranking.h"
#include "eval/world.h"
#include "traj/ascii_map.h"

using namespace deepst;

int main() {
  eval::WorldConfig config = eval::ChengduMiniWorld(/*scale=*/0.5);
  config.generator.num_days = 8;
  config.train_days = 6;
  config.val_days = 1;
  eval::World world(config);

  core::TrainerConfig trainer_config = eval::DefaultTrainerConfig();
  trainer_config.max_epochs = 12;
  auto model = eval::TrainModel(
      &world, baselines::DeepStConfigOf(eval::DefaultModelConfig(world)),
      trainer_config);

  const traj::TripRecord* rec = nullptr;
  for (const auto* candidate : world.split().test) {
    if (candidate->trip.route.size() >= 10) {
      rec = candidate;
      break;
    }
  }
  if (rec == nullptr) rec = world.split().test.front();

  core::RouteQuery query = eval::QueryFor(rec->trip);
  util::Rng rng(21);
  auto ranked = core::RankCandidateRoutes(model.get(), world.index(), query,
                                          /*num_candidates=*/6, &rng);
  std::printf("candidate routes from segment %d to (%.0f, %.0f):\n",
              query.origin, query.destination.x, query.destination.y);
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("  #%zu: %2zu segments, log-lik %7.2f, probability %.2f\n",
                i + 1, ranked[i].route.size(), ranked[i].log_likelihood,
                ranked[i].probability);
  }
  if (!ranked.empty()) {
    traj::AsciiMap map(world.net(), 20, 44);
    map.DrawNetwork();
    if (ranked.size() > 1) map.DrawRoute(ranked[1].route, '+');
    map.DrawRoute(ranked[0].route, '#');
    map.MarkPoint(world.net().SegmentStart(query.origin), 'O');
    map.MarkPoint(query.destination, 'X');
    std::printf(
        "\nmost likely route '#' (runner-up '+'), origin 'O', dest 'X':\n%s",
        map.Render().c_str());
  }
  return 0;
}
