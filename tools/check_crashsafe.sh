#!/usr/bin/env bash
# Crash-safety smoke test: kills `deepst_cli train` mid-run with SIGKILL and
# verifies that (a) a valid checkpoint survives, (b) `--resume` completes the
# run, and (c) the resumed model is bitwise identical to an uninterrupted
# run with the same seed.
#
#   tools/check_crashsafe.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/cli/deepst_cli"

cmake --build "$BUILD_DIR" -j"$(nproc)" --target deepst_cli

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Small world: enough epochs to leave a wide kill window, small enough to
# finish the whole script in a couple of minutes.
COMMON=(--data-dir "$WORK" --epochs 8 --hidden 16 --proxies 8 --seed 5)

echo "== generate dataset"
"$CLI" generate --out-dir "$WORK" --days 4 --trips-per-day 40 --seed 5

echo "== reference run (uninterrupted)"
"$CLI" train "${COMMON[@]}" --model "$WORK/ref.bin" \
  --checkpoint-dir "$WORK/ckpt_ref" --checkpoint-every 1

echo "== crash run (SIGKILL once the first checkpoint lands)"
"$CLI" train "${COMMON[@]}" --model "$WORK/crash.bin" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 &
PID=$!
for _ in $(seq 1 600); do
  [ -f "$WORK/ckpt/ckpt_latest.bin" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -9 "$PID" 2>/dev/null; then
  echo "   killed pid $PID mid-run"
  wait "$PID" 2>/dev/null || true
else
  # The run beat us to the finish line; resume below is then a no-op resume,
  # which must still reproduce the reference bitwise.
  wait "$PID"
  echo "   run finished before the kill; exercising no-op resume"
fi

[ -f "$WORK/ckpt/ckpt_latest.bin" ] || {
  echo "FAIL: no checkpoint written before the kill" >&2; exit 1; }

echo "== resume"
"$CLI" train "${COMMON[@]}" --model "$WORK/resumed.bin" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 --resume

cmp "$WORK/ref.bin" "$WORK/resumed.bin" || {
  echo "FAIL: resumed model differs from uninterrupted reference" >&2
  exit 1
}

echo "OK: killed mid-run, resumed to a bitwise-identical model"
