#!/usr/bin/env bash
# Builds the ThreadPool / backend tests under ThreadSanitizer and runs them.
#
#   tools/check_tsan.sh [build-dir]
#
# The sanitized tree lives in its own build directory (default build-tsan/)
# so it never collides with the regular build. Pass DEEPST_SANITIZE=address
# through the environment to run the same set under ASan instead.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
SANITIZER="${DEEPST_SANITIZE:-thread}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDEEPST_SANITIZE="$SANITIZER" \
  -DDEEPST_BUILD_BENCHES=OFF \
  -DDEEPST_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" --target parallel_test trainer_test

# halt_on_error makes a reported race fail the script, not just print.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export DEEPST_FAST=1

"$BUILD_DIR"/tests/parallel_test
"$BUILD_DIR"/tests/trainer_test

echo "OK: ThreadPool/backend tests clean under $SANITIZER sanitizer"
