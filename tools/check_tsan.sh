#!/usr/bin/env bash
# Back-compat shim: the TSan check generalized into check_sanitize.sh
# (thread|address). This keeps existing invocations working.
exec "$(dirname "$0")/check_sanitize.sh" thread "${1:-build-tsan}"
