// Scratch diagnostic binary (not installed): trains DeepST on a small world
// and prints generation diagnostics. Used during bring-up; kept for future
// debugging.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "baselines/wsp.h"
#include "eval/world.h"
#include "roadnet/shortest_path.h"

using namespace deepst;

int main(int argc, char** argv) {
  int epochs = argc > 1 ? std::atoi(argv[1]) : 10;
  double scale = argc > 2 ? std::atof(argv[2]) : 0.3;

  eval::WorldConfig cfg = eval::ChengduMiniWorld(scale);
  cfg.city.rows = 8;
  cfg.city.cols = 8;
  cfg.generator.num_days = 6;
  cfg.generator.max_route_m = 7000.0;
  cfg.train_days = 4;
  cfg.val_days = 1;
  if (const char* days = std::getenv("DAYS")) {
    cfg.generator.num_days = std::atoi(days);
    cfg.train_days = cfg.generator.num_days - 2 - 1;
    cfg.val_days = 1;
  }
  if (const char* tpd = std::getenv("TPD")) {
    cfg.generator.trips_per_day = std::atoi(tpd);
  }
  eval::World world(cfg);

  core::DeepSTConfig base;
  base.segment_embedding_dim = 16;
  base.gru_hidden = 32;
  base.gru_layers = 2;
  base.dest_dim = 16;
  base.traffic_dim = 8;
  base.cnn_channels = 8;
  base.num_proxies = 12;
  if (const char* k = std::getenv("K")) base.num_proxies = std::atoi(k);
  if (const char* tau = std::getenv("TAU")) {
    base.gumbel_tau = static_cast<float>(std::atof(tau));
  }
  if (const char* sd = std::getenv("STOP")) {
    base.stop_distance_m = std::atof(sd);
  }
  if (const char* klw = std::getenv("KLW")) {
    base.kl_weight = static_cast<float>(std::atof(klw));
  }
  if (const char* td = std::getenv("TDIM")) {
    base.traffic_dim = std::atoi(td);
  }
  if (const char* ch = std::getenv("CH")) {
    base.cnn_channels = std::atoi(ch);
  }
  base.mlp_hidden = 32;
  if (std::getenv("DET")) base.deterministic_traffic_latent = true;

  core::TrainerConfig tcfg;
  tcfg.max_epochs = epochs;
  tcfg.verbose = true;
  tcfg.patience = 8;
  if (const char* lr = std::getenv("LR")) {
    tcfg.learning_rate = std::atof(lr);
  }
  if (const char* clip = std::getenv("CLIP")) {
    tcfg.grad_clip = std::atof(clip);
  }
  if (const char* seed = std::getenv("SEED")) {
    tcfg.seed = static_cast<uint64_t>(std::atoll(seed));
    base.seed = tcfg.seed ^ 0xabc;
  }

  if (std::getenv("MEASURE_TRAFFIC")) {
    // How often does current traffic change the preferred route for the same
    // OD pair (no noise, no style)? Upper bound on what any traffic-aware
    // model can gain.
    int diff = 0, tot = 0;
    double seg_overlap = 0.0;
    for (const auto* rec : world.split().test) {
      if (tot >= 200) break;
      const auto& trip = rec->trip;
      auto congested = roadnet::ShortestPath(
          world.net(), trip.origin_segment(), trip.final_segment(),
          [&](roadnet::SegmentId s) {
            return world.field().TravelTime(s, trip.start_time_s);
          });
      auto freeflow = roadnet::ShortestPath(
          world.net(), trip.origin_segment(), trip.final_segment(),
          roadnet::FreeFlowTimeCost(world.net()));
      if (!congested.ok() || !freeflow.ok()) continue;
      ++tot;
      if (congested.value().path != freeflow.value().path) ++diff;
      seg_overlap += eval::Accuracy(congested.value().path,
                                    freeflow.value().path);
    }
    std::printf("traffic-changes-route: %.2f overlap %.2f (n=%d)\n",
                static_cast<double>(diff) / tot, seg_overlap / tot, tot);
  }

  const std::string variant = argc > 3 ? argv[3] : "deepst";
  core::DeepSTConfig model_cfg = baselines::DeepStConfigOf(base);
  if (variant == "cssrnn") model_cfg = baselines::CssrnnConfigOf(base);
  if (variant == "rnn") model_cfg = baselines::RnnConfigOf(base);
  if (variant == "deepst_c") model_cfg = baselines::DeepStCConfigOf(base);
  auto model = eval::TrainModel(&world, model_cfg, tcfg);

  util::Rng rng(7);
  double len_pred = 0, len_truth = 0, reached = 0;
  eval::MetricAccumulator acc;
  int n = 0;
  for (const auto* rec : world.split().test) {
    if (n >= 400) break;
    ++n;
    auto q = eval::QueryFor(rec->trip);
    auto route = model->PredictRoute(q, &rng);
    acc.Add(rec->trip.route, route);
    len_pred += route.size();
    len_truth += rec->trip.route.size();
    const double d =
        world.net().ProjectToSegment(q.destination, route.back()).distance;
    if (d < 400) reached += 1;
  }
  std::printf("pred_len %.1f truth_len %.1f reached %.2f recall %.3f acc %.3f\n",
              len_pred / n, len_truth / n, reached / n, acc.mean_recall(),
              acc.mean_accuracy());

  if (std::getenv("WSP")) {
    baselines::WspRouter wsp(world.net(), world.index(),
                             world.segment_stats());
    eval::MetricAccumulator wacc;
    int m = 0;
    for (const auto* rec : world.split().test) {
      if (m >= 400) break;
      ++m;
      auto route = wsp.PredictRoute(eval::QueryFor(rec->trip), &rng);
      wacc.Add(rec->trip.route, route);
    }
    std::printf("WSP recall %.3f acc %.3f\n", wacc.mean_recall(),
                wacc.mean_accuracy());
  }
  return 0;
}
