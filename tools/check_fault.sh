#!/usr/bin/env bash
# Fault-injection + corruption robustness suite under AddressSanitizer.
#
#   tools/check_fault.sh [build-dir]
#
# Three layers:
#   1. corruption_test  -- byte-level corpus against every binary/CSV loader
#   2. serving_test     -- degradation, deadline and pool-failure coverage
#   3. deepst_cli e2e   -- armed fault points (DEEPST_FAULTS env and --faults
#                          flag) and a corrupted data file must each produce a
#                          clean nonzero exit with an error message; never a
#                          crash, never a sanitizer report.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-fault}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDEEPST_SANITIZE=address \
  -DDEEPST_BUILD_BENCHES=OFF \
  -DDEEPST_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target corruption_test serving_test deepst_cli

export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
export DEEPST_FAST=1

"$BUILD_DIR"/tests/corruption_test
"$BUILD_DIR"/tests/serving_test

CLI="$BUILD_DIR"/cli/deepst_cli
DATA_DIR="$(mktemp -d)"
trap 'rm -rf "$DATA_DIR"' EXIT

# Expects the command to exit with a plain failure (not a crash: signals
# surface as exit codes >= 128) and to mention $2 in its output.
expect_fail() {
  local want="$1"; shift
  local out rc=0
  out="$("$@" 2>&1)" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "FAIL: expected nonzero exit: $*" >&2; echo "$out" >&2; exit 1
  fi
  if [ "$rc" -ge 128 ]; then
    echo "FAIL: crashed (exit $rc): $*" >&2; echo "$out" >&2; exit 1
  fi
  if ! grep -q "$want" <<<"$out"; then
    echo "FAIL: output missing '$want': $*" >&2; echo "$out" >&2; exit 1
  fi
}

echo "== generate tiny world =="
"$CLI" generate --out-dir "$DATA_DIR" --days 4 --trips-per-day 12 --seed 5

echo "== armed fault points fail cleanly =="
DEEPST_FAULTS="roadnet.load:io_error" expect_fail "injected" \
  "$CLI" evaluate --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/none.bin"
expect_fail "injected" \
  "$CLI" evaluate --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/none.bin" --faults "traj.load:partial_read"
expect_fail "unknown fault kind" \
  "$CLI" evaluate --data-dir "$DATA_DIR" --faults "traj.load:not_a_kind"

echo "== corrupted data files fail cleanly =="
cp "$DATA_DIR/dataset.bin" "$DATA_DIR/dataset.bak"
printf '\x5a' | dd of="$DATA_DIR/dataset.bin" bs=1 seek=100 conv=notrunc \
  status=none
expect_fail "CRC mismatch" \
  "$CLI" evaluate --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/none.bin"
mv "$DATA_DIR/dataset.bak" "$DATA_DIR/dataset.bin"
head -c 64 "$DATA_DIR/network.bin" > "$DATA_DIR/network.trunc"
cp "$DATA_DIR/network.bin" "$DATA_DIR/network.bak"
mv "$DATA_DIR/network.trunc" "$DATA_DIR/network.bin"
expect_fail "" \
  "$CLI" evaluate --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/none.bin"
mv "$DATA_DIR/network.bak" "$DATA_DIR/network.bin"

echo "== train a small model for the serving e2e =="
"$CLI" train --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/model.bin" --epochs 1 --hidden 8 --proxies 8

echo "== serving e2e: degrade by default, refuse under --strict, inject =="
# Test trip 0 has no traffic observations in its snapshot window (the tiny
# world is sparse), so default mode serves it degraded...
"$CLI" predict --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/model.bin" --hidden 8 --proxies 8 --trip 0 \
  --deadline-ms 200
# ...and strict mode refuses the same query with FailedPrecondition.
expect_fail "strict mode refuses" \
  "$CLI" predict --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/model.bin" --hidden 8 --proxies 8 --trip 0 --strict
expect_fail "injected" \
  "$CLI" predict --data-dir "$DATA_DIR" --train-days 2 --val-days 1 \
  --model "$DATA_DIR/model.bin" --hidden 8 --proxies 8 --trip 0 \
  --faults "infer.query:io_error"

echo "OK: fault-injection and corruption suites clean under address sanitizer"
