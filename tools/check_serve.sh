#!/usr/bin/env bash
# End-to-end soak of the `deepst serve` daemon (docs/serving.md).
#
#   tools/check_serve.sh [build-dir]
#
# Stages:
#   1. Startup health check -- `serve` must refuse (nonzero, no crash) a
#      data dir whose network file fails its CRC, exactly like `inspect`.
#   2. Healthy fleet -- a pipelined request stream is fully served: one
#      tagged response per request, zero errors, clean drain on `quit`.
#   3. Chaos soak (I/O faults) -- DEEPST_FAULTS armed on infer.query under
#      fleet load: the daemon must exit 0 (its own shutdown check fails the
#      process on leaked session leases), some requests fail cleanly, their
#      co-riders survive, and the admission counters balance exactly.
#   4. Chaos soak (latency + deadlines + watchdog) -- latency spikes under a
#      tight end-to-end deadline with the hung-worker watchdog armed.
#   5. SIGTERM drain -- a long-lived daemon must drain and exit 0 on
#      SIGTERM, never hang or crash.
#   6. Ingest storm + kill -9 (docs/streaming.md) -- live traffic enabled
#      via --traffic-wal: seed observations, swap, record a pinned query,
#      then kill -9 the daemon mid-ingest-storm. A restart must replay the
#      WAL (torn tail tolerated), land on the same generation, and serve
#      the recorded query bitwise identically.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target deepst_cli

CLI="$BUILD_DIR"/cli/deepst_cli
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Split + model-shape flags shared by train and every serve run.
DATA_FLAGS=(--train-days 2 --val-days 1 --hidden 16 --proxies 8)

# Expects nonzero exit, no crash (signals exit >= 128), output naming $1.
expect_fail() {
  local want="$1"; shift
  local out rc=0
  out="$("$@" 2>&1)" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "FAIL: expected nonzero exit: $*" >&2; echo "$out" >&2; exit 1
  fi
  if [ "$rc" -ge 128 ]; then
    echo "FAIL: crashed (exit $rc): $*" >&2; echo "$out" >&2; exit 1
  fi
  if ! grep -q "$want" <<<"$out"; then
    echo "FAIL: output missing '$want': $*" >&2; echo "$out" >&2; exit 1
  fi
}

# Emits n requests (every fifth one a score) plus stats and quit.
gen_requests() {
  local n="$1"
  for ((i = 0; i < n; i++)); do
    if (( i % 5 == 4 )); then echo "score_trip $i"; else echo "predict_trip $i"; fi
  done
  echo "stats"
  echo "quit"
}

# Asserts the daemon's final drained counters balance: every submission is
# accounted for by exactly one admission-or-rejection counter, and every
# admitted request by exactly one completion counter.
check_invariants() {
  local errlog="$1"
  local drained
  drained=$(grep -m1 '^drained: ' "$errlog" | sed 's/^drained: //')
  if [ -z "$drained" ]; then
    echo "FAIL: no drained counters in $errlog" >&2; exit 1
  fi
  local ok
  ok=$(jq -n --argjson m "$drained" \
    '($m.submitted == $m.admitted + $m.shed_queue_full + $m.rejected_draining)
     and ($m.admitted == $m.completed_ok + $m.failed)
     and ($m.expired_in_queue <= $m.failed)')
  if [ "$ok" != "true" ]; then
    echo "FAIL: serve counters do not balance: $drained" >&2; exit 1
  fi
  echo "OK: counters balance ($drained)"
}

echo "== generate + train a tiny model =="
"$CLI" generate --out-dir "$WORK" --days 4 --trips-per-day 12 --seed 5
"$CLI" train --data-dir "$WORK" "${DATA_FLAGS[@]}" \
  --model "$WORK/model.bin" --epochs 1

echo "== startup health check gates on file validation =="
BROKEN="$WORK/broken"
mkdir -p "$BROKEN"
cp "$WORK/network.bin" "$WORK/dataset.bin" "$BROKEN/"
size=$(stat -c%s "$BROKEN/network.bin")
# Flip one payload byte: the header still parses, the CRC must not.
printf '\xa5' | dd of="$BROKEN/network.bin" bs=1 seek=$((size - 64)) \
  conv=notrunc status=none
expect_fail "failed validation" "$CLI" inspect "$BROKEN/network.bin"
expect_fail "health check failed" "$CLI" serve --data-dir "$BROKEN" \
  "${DATA_FLAGS[@]}" --model "$WORK/model.bin"
echo "OK: corrupt network refused by inspect and serve alike"

echo "== healthy fleet =="
N=30
rc=0
gen_requests "$N" | "$CLI" serve --data-dir "$WORK" "${DATA_FLAGS[@]}" \
  --model "$WORK/model.bin" --workers 2 --max-batch 4 \
  > "$WORK/healthy.out" 2> "$WORK/healthy.err" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: healthy serve exited $rc" >&2; cat "$WORK/healthy.err" >&2
  exit 1
fi
oks=$(grep -c '^#[0-9]* ok ' "$WORK/healthy.out" || true)
errs=$(grep -c '^#[0-9]* error ' "$WORK/healthy.out" || true)
if [ "$oks" -ne "$N" ] || [ "$errs" -ne 0 ]; then
  echo "FAIL: healthy fleet served $oks/$N ok, $errs errors" >&2
  cat "$WORK/healthy.out" >&2; exit 1
fi
check_invariants "$WORK/healthy.err"
echo "OK: $N/$N requests served, zero errors"

echo "== chaos soak: injected I/O faults under fleet load =="
N=80
rc=0
gen_requests "$N" | DEEPST_FAULTS="infer.query:io_error@6x12" \
  "$CLI" serve --data-dir "$WORK" "${DATA_FLAGS[@]}" \
  --model "$WORK/model.bin" --workers 2 --queue-capacity 8 --max-batch 4 \
  > "$WORK/chaos.out" 2> "$WORK/chaos.err" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: chaos serve exited $rc (crash or leaked leases)" >&2
  cat "$WORK/chaos.err" >&2; exit 1
fi
oks=$(grep -c '^#[0-9]* ok ' "$WORK/chaos.out" || true)
errs=$(grep -c '^#[0-9]* error ' "$WORK/chaos.out" || true)
if [ "$errs" -lt 1 ]; then
  echo "FAIL: armed faults never surfaced (0 request errors)" >&2; exit 1
fi
if [ "$oks" -lt $((N / 2)) ]; then
  echo "FAIL: only $oks/$N requests survived the fault storm" >&2
  cat "$WORK/chaos.out" >&2; exit 1
fi
if [ $((oks + errs)) -ne "$N" ]; then
  echo "FAIL: $((oks + errs)) responses for $N requests" >&2; exit 1
fi
check_invariants "$WORK/chaos.err"
echo "OK: $errs injected failures isolated, $oks co-riders served"

echo "== chaos soak: latency spikes + deadlines + watchdog =="
N=60
rc=0
gen_requests "$N" | DEEPST_FAULTS="infer.query:latency@2x20" \
  "$CLI" serve --data-dir "$WORK" "${DATA_FLAGS[@]}" \
  --model "$WORK/model.bin" --workers 2 --queue-capacity 6 --max-batch 2 \
  --deadline-ms 250 --watchdog-ms 5 --hung-ms 50 \
  > "$WORK/latency.out" 2> "$WORK/latency.err" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: latency-chaos serve exited $rc" >&2
  cat "$WORK/latency.err" >&2; exit 1
fi
responses=$(grep -c '^#[0-9]* ' "$WORK/latency.out" || true)
if [ "$responses" -ne "$N" ]; then
  echo "FAIL: $responses responses for $N requests under latency faults" >&2
  exit 1
fi
check_invariants "$WORK/latency.err"
echo "OK: every request resolved under latency faults + deadlines"

echo "== SIGTERM drains and exits 0 =="
FIFO="$WORK/fifo"
mkfifo "$FIFO"
"$CLI" serve --data-dir "$WORK" "${DATA_FLAGS[@]}" --model "$WORK/model.bin" \
  --workers 2 < "$FIFO" > "$WORK/drain.out" 2> "$WORK/drain.err" &
PID=$!
exec 3> "$FIFO"  # hold the write end open so stdin does not EOF
for _ in $(seq 1 100); do
  grep -q '^serving:' "$WORK/drain.err" 2>/dev/null && break
  sleep 0.2
done
echo "predict_trip 0" >&3
sleep 1
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
exec 3>&-
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM drain exited $rc" >&2
  cat "$WORK/drain.err" >&2; exit 1
fi
check_invariants "$WORK/drain.err"
echo "OK: SIGTERM drained cleanly (exit 0)"

echo "== ingest storm: kill -9 mid-append, WAL replay, pinned-query identity =="
WAL="$WORK/traffic.wal"
LIVE_FIFO="$WORK/live_fifo"
mkfifo "$LIVE_FIFO"
# Strips the request tag and the (legitimately varying) latency field so
# response lines can be compared bitwise across a crash/restart.
normalize() { sed -E 's/^#[0-9]+ //; s/ latency_ms=[0-9.]+//'; }

"$CLI" serve --data-dir "$WORK" "${DATA_FLAGS[@]}" --model "$WORK/model.bin" \
  --workers 2 --traffic-wal "$WAL" --swap-interval-ms 0 \
  < "$LIVE_FIFO" > "$WORK/live.out" 2> "$WORK/live.err" &
PID=$!
exec 4> "$LIVE_FIFO"
for _ in $(seq 1 100); do
  grep -q '^serving:' "$WORK/live.err" 2>/dev/null && break
  sleep 0.2
done
# Seed observations inside the recorded query's window, fold them into a
# published snapshot (generation 2), and record the pinned response.
echo "ingest 100,200,200,5;200,300,300,6;700,400,400,7" >&4
echo "swap" >&4
echo "predict 0 500 500 1500" >&4
# Responses flush on the next protocol line; a second swap drains the
# pipeline (and publishes nothing, since nothing is pending).
echo "swap" >&4
for _ in $(seq 1 100); do
  grep -q '^#1 ' "$WORK/live.out" 2>/dev/null && break
  sleep 0.2
done
REF=$(grep -m1 '^#1 ' "$WORK/live.out" | normalize)
if [ -z "$REF" ] || ! grep -q 'gen=2' <<<"$REF"; then
  echo "FAIL: recorded query missing or not pinned to generation 2" >&2
  cat "$WORK/live.out" "$WORK/live.err" >&2; exit 1
fi
# Storm: concurrent ingest (far outside the recorded window) + predicts,
# then kill -9 the daemon while appends are in flight.
(
  i=0
  while :; do
    echo "ingest $((500000 + i)),250,250,5" || break
    echo "predict_trip $((i % 8))" || break
    i=$((i + 1))
  done >&4
) 2>/dev/null &
STORM=$!
sleep 1
kill -9 "$PID"
rc=0
wait "$PID" || rc=$?
kill "$STORM" 2>/dev/null || true
wait "$STORM" 2>/dev/null || true
exec 4>&-
if [ "$rc" -ne 137 ]; then
  echo "FAIL: expected exit 137 after kill -9, got $rc" >&2; exit 1
fi
if [ ! -s "$WAL" ]; then
  echo "FAIL: no WAL left behind by the killed daemon" >&2; exit 1
fi

# Restart on the same WAL: replay must rebuild generation 2 and serve the
# recorded query bitwise identically (acked rows survive; at most the
# unacked torn tail is dropped).
printf 'predict 0 500 500 1500\nquit\n' | \
  "$CLI" serve --data-dir "$WORK" "${DATA_FLAGS[@]}" --model "$WORK/model.bin" \
  --workers 2 --traffic-wal "$WAL" --swap-interval-ms 0 \
  > "$WORK/replay.out" 2> "$WORK/replay.err" || {
  echo "FAIL: restart on recovered WAL did not exit 0" >&2
  cat "$WORK/replay.err" >&2; exit 1
}
if ! grep -q 'live traffic: wal .* replayed' "$WORK/replay.err"; then
  echo "FAIL: restart did not report a WAL replay" >&2
  cat "$WORK/replay.err" >&2; exit 1
fi
POST=$(grep -m1 '^#0 ' "$WORK/replay.out" | normalize)
if [ "$REF" != "$POST" ]; then
  echo "FAIL: pinned query diverged across crash/restart" >&2
  echo "  pre-crash:  $REF" >&2
  echo "  post-crash: $POST" >&2
  cat "$WORK/replay.err" >&2; exit 1
fi
check_invariants "$WORK/replay.err"
# Opening the WAL truncated any torn tail, so inspect must now pass and
# agree with the daemon's own accounting.
"$CLI" inspect "$WAL" > "$WORK/wal.inspect" || {
  echo "FAIL: inspect rejected the recovered WAL" >&2
  cat "$WORK/wal.inspect" >&2; exit 1
}
grep -q 'traffic wal v1: .* crc OK' "$WORK/wal.inspect" || {
  echo "FAIL: inspect did not identify a clean traffic WAL" >&2
  cat "$WORK/wal.inspect" >&2; exit 1
}
echo "OK: pinned query bitwise identical across kill -9 + WAL replay"

echo "OK: serve daemon soak passed (health gate, fleet, chaos, drain, ingest storm)"
