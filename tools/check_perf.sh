#!/usr/bin/env bash
# Gate on the graph-free inference engine's speedup and parity.
#
#   tools/check_perf.sh [build-dir] [min-speedup]
#
# Builds bench_micro + inference_test, runs the inference sweep (which
# writes <build-dir>/bench_out/BENCH_inference.json comparing the autodiff
# graph path against the fast path over thread counts), asserts the fast
# path's single-thread speedup on both timed workloads (ScoreRoute on a
# 19-segment route, beam PredictRoute) is at least min-speedup (default 3),
# and runs the parity/regression test suite. DEEPST_FAST=1 keeps the run
# small; the speedup also holds at the full model size (docs/inference.md).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MIN_SPEEDUP="${2:-3.0}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro inference_test

export DEEPST_FAST=1

echo "== inference sweep (graph vs fast, threads 1/2/4) =="
"$BUILD_DIR"/bench/bench_micro --benchmark_filter='BM_InferenceSweep'

JSON="$BUILD_DIR/bench_out/BENCH_inference.json"
[[ -f "$JSON" ]] || { echo "FAIL: $JSON not written" >&2; exit 1; }

fail=0
for workload in score_route_len19 predict_route; do
  speedup=$(jq -r --arg w "$workload" \
    '.[] | select(.engine == "fast" and .workload == $w and .threads == 1)
         | .speedup_vs_graph' "$JSON")
  ok=$(jq -n --argjson s "$speedup" --argjson min "$MIN_SPEEDUP" '$s >= $min')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: $workload single-thread speedup ${speedup}x < ${MIN_SPEEDUP}x" >&2
    fail=1
  else
    echo "OK: $workload single-thread speedup ${speedup}x >= ${MIN_SPEEDUP}x"
  fi
done
[[ "$fail" == 0 ]] || exit 1

echo "== parity / regression tests =="
"$BUILD_DIR"/tests/inference_test

echo "OK: fast path >= ${MIN_SPEEDUP}x over the graph path and parity holds"
