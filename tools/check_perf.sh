#!/usr/bin/env bash
# Gate on the graph-free inference engine's speedup + parity, and on the
# data-parallel training engine's speedup + determinism.
#
#   tools/check_perf.sh [build-dir] [min-speedup] [min-train-speedup]
#       [min-scale-speedup] [min-serve-speedup] [min-quant-speedup]
#       [min-gemm-speedup] [max-ingest-p99-ratio]
#
# Inference: builds bench_micro + inference_test, runs the inference sweep
# (which writes <build-dir>/bench_out/BENCH_inference.json comparing the
# autodiff graph path against the fast path over thread counts), asserts
# the fast path's single-thread speedup on both timed workloads (ScoreRoute
# on a 19-segment route, beam PredictRoute) is at least min-speedup
# (default 3), and runs the parity/regression test suite.
#
# Training: runs the training sweep (serial single-graph tape vs
# micro-sharded on 1/2/4 threads -> BENCH_training.json), asserts sharded
# runs trained bitwise identical parameters across thread counts, that
# single-thread sharding overhead stays under 30%, and — on machines with
# >= 4 cores, where wall-clock parallel speedup is physically possible —
# that the 4-thread epoch speedup is at least min-train-speedup
# (default 1.8).
#
# Scale: runs the cold-load sweep (bench_scale -> BENCH_scale.json, v2
# streaming heap vs v3 mmap at ~10k and ~100k directed segments) and asserts
# the v3 path reaches query-ready at least min-scale-speedup (default 5)
# times faster than v2 at the 100k scale. This sweep runs at full size even
# under DEEPST_FAST, since 100k segments is the claim being gated
# (docs/formats.md).
#
# Serving: runs the serve-daemon sweep (bench_serving -> BENCH_serving.json,
# closed-loop client fleet against the batching scheduler at 1/2/4 workers)
# and — on machines with >= 4 cores — asserts 4 workers deliver at least
# min-serve-speedup (default 2.0) times the 1-worker QPS without letting p99
# latency grow past 3x the 1-worker tail (docs/serving.md). The live-ingest
# scenario (server_ingest: concurrent ingest + snapshot swaps against the
# same 4-worker fleet, docs/streaming.md) must keep its p99 within
# max-ingest-p99-ratio (default 1.5) of the static 4-worker p99 — swaps
# must never stall serving.
#
# Quantization + memoization: runs the quant sweep (BM_QuantSweep ->
# BENCH_quant.json; bf16/int8 GEMV kernels and the transition memo against
# the double fast path on a hot-query beam workload). Always asserts the
# accuracy-parity floors (bf16 top-1 agreement >= 0.99 with mean
# log-likelihood delta <= 1e-3 per transition; int8 >= 0.95 / <= 5e-3) and
# a steady-state memo hit rate >= 0.5; on AVX2 hardware (where the vector
# kernels actually dispatch) also asserts the memoized quantized variants
# beat the unmemoized double fast path by min-quant-speedup (default 2.0).
#
# GEMM blocking: runs the GEMM sweep (BM_GemmSweep -> BENCH_gemm.json; the
# register-blocked panel kernels against the round-two chunk kernels, plus
# the memo-cold batched beam workload with config.gemm_blocking off vs on).
# Always asserts every row's bitwise_equal field (the blocking must never
# change a result, at any precision); on AVX2 hardware also asserts the
# batched-beam double speedup is at least min-gemm-speedup (default 1.5).
#
# DEEPST_FAST=1 keeps the other runs small; the speedups also hold at the
# full model size (docs/inference.md, docs/training-perf.md).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MIN_SPEEDUP="${2:-3.0}"
MIN_TRAIN_SPEEDUP="${3:-1.8}"
MIN_SCALE_SPEEDUP="${4:-5.0}"
MIN_SERVE_SPEEDUP="${5:-2.0}"
MIN_QUANT_SPEEDUP="${6:-2.0}"
MIN_GEMM_SPEEDUP="${7:-1.5}"
MAX_INGEST_P99_RATIO="${8:-1.5}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro bench_scale \
  bench_serving inference_test train_sharded_test quant_test

export DEEPST_FAST=1

echo "== inference sweep (graph vs fast, threads 1/2/4) =="
# The benches write bench_out/ relative to their working directory; run them
# from the build dir so the JSON lands where this script (and .gitignore)
# expect it.
(cd "$BUILD_DIR" && bench/bench_micro --benchmark_filter='BM_InferenceSweep')

JSON="$BUILD_DIR/bench_out/BENCH_inference.json"
[[ -f "$JSON" ]] || { echo "FAIL: $JSON not written" >&2; exit 1; }

fail=0
for workload in score_route_len19 predict_route; do
  speedup=$(jq -r --arg w "$workload" \
    '.[] | select(.engine == "fast" and .workload == $w and .threads == 1)
         | .speedup_vs_graph' "$JSON")
  ok=$(jq -n --argjson s "$speedup" --argjson min "$MIN_SPEEDUP" '$s >= $min')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: $workload single-thread speedup ${speedup}x < ${MIN_SPEEDUP}x" >&2
    fail=1
  else
    echo "OK: $workload single-thread speedup ${speedup}x >= ${MIN_SPEEDUP}x"
  fi
done
[[ "$fail" == 0 ]] || exit 1

echo "== training sweep (serial vs sharded, threads 1/2/4) =="
(cd "$BUILD_DIR" && bench/bench_micro --benchmark_filter='BM_TrainingSweep')

TRAIN_JSON="$BUILD_DIR/bench_out/BENCH_training.json"
[[ -f "$TRAIN_JSON" ]] || { echo "FAIL: $TRAIN_JSON not written" >&2; exit 1; }

bitwise=$(jq -r '.[0].bitwise_identical_params' "$TRAIN_JSON")
if [[ "$bitwise" != "true" ]]; then
  echo "FAIL: sharded training parameters differ across thread counts" >&2
  exit 1
fi
echo "OK: sharded parameters bitwise identical across 1/2/4 threads"

# Single-thread sharding overhead gate: sharding swaps kernel-level for
# shard-level parallelism, so on one thread it must stay within 30% of the
# single-graph tape (arena recycling keeps it close). Runs on any machine.
overhead=$(jq -r '.[] | select(.mode == "sharded" and .threads == 1)
                      | .speedup_vs_serial' "$TRAIN_JSON")
ok=$(jq -n --argjson s "$overhead" '$s >= 0.7')
if [[ "$ok" != "true" ]]; then
  echo "FAIL: sharded 1-thread runs at ${overhead}x of serial (< 0.7x)" >&2
  exit 1
fi
echo "OK: sharded 1-thread at ${overhead}x of serial (>= 0.7x)"

# Wall-clock speedup gate: only meaningful where 4 workers can actually run
# in parallel; on smaller machines report the number instead of gating on
# the weather.
cores=$(nproc)
speedup4=$(jq -r '.[] | select(.mode == "sharded" and .threads == 4)
                      | .speedup_vs_serial' "$TRAIN_JSON")
if [[ "$cores" -ge 4 ]]; then
  ok=$(jq -n --argjson s "$speedup4" --argjson min "$MIN_TRAIN_SPEEDUP" \
       '$s >= $min')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: sharded 4-thread epoch speedup ${speedup4}x < ${MIN_TRAIN_SPEEDUP}x" >&2
    exit 1
  fi
  echo "OK: sharded 4-thread epoch speedup ${speedup4}x >= ${MIN_TRAIN_SPEEDUP}x"
else
  echo "SKIP: 4-thread speedup gate (${cores} core(s) available; measured ${speedup4}x)"
fi

echo "== scale sweep (cold load to query-ready, v2 heap vs v3 mmap) =="
# Full-size on purpose: the gate is about the 100k-segment regime.
(cd "$BUILD_DIR" && DEEPST_FAST=0 bench/bench_scale)

SCALE_JSON="$BUILD_DIR/bench_out/BENCH_scale.json"
[[ -f "$SCALE_JSON" ]] || { echo "FAIL: $SCALE_JSON not written" >&2; exit 1; }

segs=$(jq -r 'map(.segments) | max' "$SCALE_JSON")
ok=$(jq -n --argjson s "$segs" '$s >= 100000')
if [[ "$ok" != "true" ]]; then
  echo "FAIL: largest scale has $segs segments (< 100000)" >&2
  exit 1
fi
scale_speedup=$(jq -r --argjson s "$segs" \
  '.[] | select(.format == "v3" and .segments == $s) | .speedup_vs_v2' \
  "$SCALE_JSON")
ok=$(jq -n --argjson s "$scale_speedup" --argjson min "$MIN_SCALE_SPEEDUP" \
     '$s >= $min')
if [[ "$ok" != "true" ]]; then
  echo "FAIL: v3 cold load at ${segs} segments is ${scale_speedup}x vs v2 (< ${MIN_SCALE_SPEEDUP}x)" >&2
  exit 1
fi
echo "OK: v3 cold load at ${segs} segments is ${scale_speedup}x vs v2 (>= ${MIN_SCALE_SPEEDUP}x)"

echo "== serving sweep (client fleet vs batching daemon, workers 1/2/4) =="
(cd "$BUILD_DIR" && bench/bench_serving)

SERVE_JSON="$BUILD_DIR/bench_out/BENCH_serving.json"
[[ -f "$SERVE_JSON" ]] || { echo "FAIL: $SERVE_JSON not written" >&2; exit 1; }

qps1=$(jq -r '.[] | select(.mode == "server" and .workers == 1) | .qps' \
  "$SERVE_JSON")
qps4=$(jq -r '.[] | select(.mode == "server" and .workers == 4) | .qps' \
  "$SERVE_JSON")
p99_1=$(jq -r '.[] | select(.mode == "server" and .workers == 1) | .p99_ms' \
  "$SERVE_JSON")
p99_4=$(jq -r '.[] | select(.mode == "server" and .workers == 4) | .p99_ms' \
  "$SERVE_JSON")
serve_speedup=$(jq -n --argjson a "$qps4" --argjson b "$qps1" '$a / $b')
# Like the training gate: 4 workers can only beat 1 where 4 cores exist;
# elsewhere report the measurement instead of gating on the hardware.
if [[ "$cores" -ge 4 ]]; then
  ok=$(jq -n --argjson s "$serve_speedup" --argjson min "$MIN_SERVE_SPEEDUP" \
       --argjson p1 "$p99_1" --argjson p4 "$p99_4" \
       '($s >= $min) and ($p4 <= 3 * $p1)')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: serve 4-worker QPS ${serve_speedup}x vs 1 worker (want >= ${MIN_SERVE_SPEEDUP}x at p99 ${p99_4}ms <= 3x ${p99_1}ms)" >&2
    exit 1
  fi
  echo "OK: serve 4-worker QPS ${serve_speedup}x >= ${MIN_SERVE_SPEEDUP}x (p99 ${p99_4}ms vs ${p99_1}ms)"
else
  echo "SKIP: serve 4-worker QPS gate (${cores} core(s) available; measured ${serve_speedup}x, p99 ${p99_4}ms vs ${p99_1}ms)"
fi

# Live-ingest tail gate: snapshot swaps (clone + fold off-thread, atomic
# publish, memo-epoch bump) must never stall the predict fleet. Like the
# other concurrency gates, only meaningful where the fleet, the ingest
# client, and the aggregator can actually run in parallel.
p99_live=$(jq -r '.[] | select(.mode == "server_ingest") | .p99_ms' \
  "$SERVE_JSON")
live_swaps=$(jq -r '.[] | select(.mode == "server_ingest") | .swaps' \
  "$SERVE_JSON")
if [[ "$cores" -ge 4 ]]; then
  ok=$(jq -n --argjson l "$p99_live" --argjson s "$p99_4" \
       --argjson r "$MAX_INGEST_P99_RATIO" '$l <= $r * $s')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: live-ingest p99 ${p99_live}ms > ${MAX_INGEST_P99_RATIO}x static 4-worker p99 ${p99_4}ms (${live_swaps} swaps)" >&2
    exit 1
  fi
  echo "OK: live-ingest p99 ${p99_live}ms <= ${MAX_INGEST_P99_RATIO}x static ${p99_4}ms across ${live_swaps} swaps"
else
  echo "SKIP: live-ingest p99 gate (${cores} core(s) available; measured ${p99_live}ms vs static ${p99_4}ms, ${live_swaps} swaps)"
fi

echo "== quant sweep (bf16/int8 kernels + transition memo vs double) =="
(cd "$BUILD_DIR" && bench/bench_micro --benchmark_filter='BM_QuantSweep')

QUANT_JSON="$BUILD_DIR/bench_out/BENCH_quant.json"
[[ -f "$QUANT_JSON" ]] || { echo "FAIL: $QUANT_JSON not written" >&2; exit 1; }

# Accuracy-parity floors run on every machine: a reduced precision that
# drifts from the double path is wrong regardless of how fast it is. The
# floors leave generous margin over measured behavior (top-1 agreement
# 1.00, deltas <= 1e-4 on the micro model) while catching packing or
# kernel regressions an order of magnitude before they reach eval metrics.
fail=0
for spec in "bf16_memo 0.99 0.001" "int8_memo 0.95 0.005"; do
  read -r variant min_top1 max_ce <<< "$spec"
  top1=$(jq -r --arg v "$variant" \
    '.[] | select(.variant == $v) | .top1_agreement' "$QUANT_JSON")
  ce=$(jq -r --arg v "$variant" \
    '.[] | select(.variant == $v) | .ce_delta_per_transition' "$QUANT_JSON")
  ok=$(jq -n --argjson t "$top1" --argjson c "$ce" \
       --argjson mt "$min_top1" --argjson mc "$max_ce" \
       '($t >= $mt) and ($c <= $mc)')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: $variant accuracy parity (top-1 ${top1} vs >= ${min_top1}, ce delta ${ce} vs <= ${max_ce})" >&2
    fail=1
  else
    echo "OK: $variant accuracy parity (top-1 ${top1}, ce delta ${ce}/transition)"
  fi
done
[[ "$fail" == 0 ]] || exit 1

# The memo must actually be absorbing the hot-query workload; 0.5 is far
# below the measured steady state (~0.99) but rules out a cache that
# silently stopped hitting (bad keys, over-invalidation).
hit=$(jq -r '.[] | select(.variant == "double_memo") | .steady_hit_rate' \
  "$QUANT_JSON")
ok=$(jq -n --argjson h "$hit" '$h >= 0.5')
if [[ "$ok" != "true" ]]; then
  echo "FAIL: transition memo steady-state hit rate ${hit} < 0.5" >&2
  exit 1
fi
echo "OK: transition memo steady-state hit rate ${hit} >= 0.5"

# Throughput gate: the memoized quantized fast path must beat the current
# (unmemoized double) fast path. Vector-ISA-dependent, so like the other
# hardware gates it reports instead of failing where the kernels cannot
# dispatch past the scalar clone.
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  for variant in bf16_memo int8_memo; do
    speedup=$(jq -r --arg v "$variant" \
      '.[] | select(.variant == $v) | .speedup_vs_double' "$QUANT_JSON")
    ok=$(jq -n --argjson s "$speedup" --argjson min "$MIN_QUANT_SPEEDUP" \
         '$s >= $min')
    if [[ "$ok" != "true" ]]; then
      echo "FAIL: $variant beam workload speedup ${speedup}x < ${MIN_QUANT_SPEEDUP}x" >&2
      fail=1
    else
      echo "OK: $variant beam workload speedup ${speedup}x >= ${MIN_QUANT_SPEEDUP}x"
    fi
  done
  [[ "$fail" == 0 ]] || exit 1
else
  for variant in bf16_memo int8_memo; do
    speedup=$(jq -r --arg v "$variant" \
      '.[] | select(.variant == $v) | .speedup_vs_double' "$QUANT_JSON")
    echo "SKIP: $variant speedup gate (no avx2; measured ${speedup}x)"
  done
fi

echo "== gemm sweep (register-blocked kernels vs chunk, beam blocking off/on) =="
(cd "$BUILD_DIR" && bench/bench_micro --benchmark_filter='BM_GemmSweep')

GEMM_JSON="$BUILD_DIR/bench_out/BENCH_gemm.json"
[[ -f "$GEMM_JSON" ]] || { echo "FAIL: $GEMM_JSON not written" >&2; exit 1; }

# Bitwise floor runs on every machine: blocking reorders work across output
# elements only, so every kernel row (all precisions) and the end-to-end
# beam routes must match the unblocked path bit for bit.
not_bitwise=$(jq -r '[.[] | select(.bitwise_equal != true) | .variant] | join(", ")' \
  "$GEMM_JSON")
if [[ -n "$not_bitwise" ]]; then
  echo "FAIL: blocked GEMM differs from the unblocked path: $not_bitwise" >&2
  exit 1
fi
echo "OK: blocked GEMM bitwise identical to the unblocked path (all variants)"

# Throughput gate: hardware-dependent like the other vector-ISA gates.
gemm_speedup=$(jq -r \
  '.[] | select(.variant == "beam_multi_double") | .speedup_vs_unblocked' \
  "$GEMM_JSON")
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  ok=$(jq -n --argjson s "$gemm_speedup" --argjson min "$MIN_GEMM_SPEEDUP" \
       '$s >= $min')
  if [[ "$ok" != "true" ]]; then
    echo "FAIL: memo-cold batched beam speedup ${gemm_speedup}x < ${MIN_GEMM_SPEEDUP}x" >&2
    exit 1
  fi
  echo "OK: memo-cold batched beam speedup ${gemm_speedup}x >= ${MIN_GEMM_SPEEDUP}x"
else
  echo "SKIP: gemm speedup gate (no avx2; measured ${gemm_speedup}x)"
fi

echo "== parity / regression tests =="
"$BUILD_DIR"/tests/inference_test
"$BUILD_DIR"/tests/train_sharded_test
"$BUILD_DIR"/tests/quant_test

echo "OK: fast path >= ${MIN_SPEEDUP}x over the graph path and parity holds"
