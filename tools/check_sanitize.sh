#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under a sanitizer and runs them.
#
#   tools/check_sanitize.sh [thread|address] [build-dir]
#
# The sanitizer (default: thread) maps to the DEEPST_SANITIZE CMake option;
# the instrumented tree lives in its own build directory (default
# build-<sanitizer>/) so it never collides with the regular build.
set -euo pipefail

cd "$(dirname "$0")/.."
SANITIZER="${1:-${DEEPST_SANITIZE:-thread}}"
case "$SANITIZER" in
  thread|address) ;;
  *) echo "usage: tools/check_sanitize.sh [thread|address] [build-dir]" >&2
     exit 2 ;;
esac
BUILD_DIR="${2:-build-$SANITIZER}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDEEPST_SANITIZE="$SANITIZER" \
  -DDEEPST_BUILD_BENCHES=OFF \
  -DDEEPST_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target parallel_test trainer_test checkpoint_test inference_test \
           train_sharded_test corruption_test serving_test serve_test \
           format_v3_test spatial_index_test quant_test streaming_test \
           traffic_test

# halt_on_error makes a reported race/issue fail the script, not just print.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
export DEEPST_FAST=1

"$BUILD_DIR"/tests/parallel_test
"$BUILD_DIR"/tests/trainer_test
"$BUILD_DIR"/tests/checkpoint_test
"$BUILD_DIR"/tests/inference_test
"$BUILD_DIR"/tests/train_sharded_test
"$BUILD_DIR"/tests/corruption_test
"$BUILD_DIR"/tests/serving_test
"$BUILD_DIR"/tests/serve_test
"$BUILD_DIR"/tests/format_v3_test
"$BUILD_DIR"/tests/spatial_index_test
"$BUILD_DIR"/tests/quant_test
"$BUILD_DIR"/tests/streaming_test
# Published-snapshot reader contract + live swap/pinning races
# (docs/streaming.md): concurrent lazy slot builds and swaps racing the
# reader fleet must be clean under TSan.
"$BUILD_DIR"/tests/traffic_test \
  --gtest_filter='TrafficTensorCacheTest.ConcurrentReadersAreSafe' \
  --gtest_repeat=3

# Short chaos soak: repeat the fault-driven serve tests (poisoned batches,
# hung-worker watchdog recycling) so the injected-failure and lease-recycling
# paths run many times under the sanitizer (docs/serving.md).
"$BUILD_DIR"/tests/serve_test --gtest_repeat=5 \
  --gtest_filter='ServeTest.PoisonedRequestFailsAloneInItsBatch:ServeTest.WatchdogRecyclesHungWorkerAndSpawnsReplacement:ServeTest.ShedsWhenQueueFullWithRetryAfterHint'

echo "OK: ThreadPool/backend/checkpoint/inference/sharded-training/robustness/format-v3/serve/quant tests clean under $SANITIZER sanitizer"
